"""Shared Mediator-Wrapper machinery (§II-B, Fig. 4a).

An MW system decomposes a cross-database query into *local* subqueries
(pushed to the DBMSes through wrappers) and *global* operations
performed by the mediator on fetched intermediates.  Decomposition
reuses XDB's annotation/finalization pipeline with a degenerate rule:
any operator whose inputs live on different DBMSes (or any binary
operator at all, for per-table pushdown systems like Presto) is
annotated with the mediator.

The execution timeline is simulated under the same model as XDB's
schedule: subqueries run in parallel on the sources, transfers share
the mediator's ingress link, and the mediator then computes the global
operations (optionally spread over W workers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.connect.connector import DBMSConnector
from repro.core.annotate import Annotation
from repro.core.catalog import GlobalCatalog
from repro.core.finalize import PlanFinalizer
from repro.core.logical import LogicalOptimizer
from repro.core.plan import DelegationPlan, Movement, Task
from repro.engine.cost import CardinalityEstimator, CostModel, ScanStats
from repro.engine.database import Database
from repro.engine.fdw import PROTOCOL_CPU_FACTORS, PROTOCOL_FACTORS
from repro.engine.result import Result
from repro.errors import OptimizerError
from repro.federation.deployment import Deployment
from repro.net.metrics import TransferSummary, summarize
from repro.relational import algebra
from repro.relational.decompile import plan_to_select
from repro.sql import ast
from repro.sql.parser import parse_statement

#: Annotation label for operations the mediator performs itself.
MEDIATOR = "__mediator__"


@dataclass
class BaselineReport:
    """What a baseline run produced (mirrors :class:`XDBReport`)."""

    system: str
    result: Result
    total_seconds: float
    #: the "actual execution" share (white bar of Fig. 1)
    processing_seconds: float
    #: time attributable to moving data to/from the mediator (shaded bar)
    transfer_seconds: float
    transfers: Optional[TransferSummary] = None
    subquery_count: int = 0
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def execution_seconds(self) -> float:
        return self.total_seconds


class MediatorSystem:
    """Base class for the MW baselines."""

    #: subclasses: system name for reports
    name = "mediator"
    #: wire protocol between sources and the mediator
    protocol = "binary"
    #: whether co-located joins are pushed down (Garlic: yes, Presto: no)
    pushdown_colocated_joins = True
    #: mediator engine profile
    mediator_profile = "postgres"
    #: worker parallelism for mediator-side processing
    workers = 1

    def __init__(self, deployment: Deployment, mediator_name: str = None):
        self.deployment = deployment
        self.connectors: Dict[str, DBMSConnector] = dict(
            deployment.connectors
        )
        # Mediator connectors may use a different protocol than XDB's.
        for name, connector in self.connectors.items():
            self.connectors[name] = DBMSConnector(
                connector.database,
                deployment.network,
                deployment.middleware_node,
                protocol=self.protocol,
            )
        self.catalog = GlobalCatalog(self.connectors)
        self.optimizer = LogicalOptimizer(self.catalog)
        self.finalizer = PlanFinalizer()
        mediator_name = mediator_name or f"{self.name}_mediator"
        self.mediator: Database = deployment.add_auxiliary_database(
            mediator_name, self.mediator_profile
        )
        self._temp_counter = 0

    # -- the MW annotation rule ------------------------------------------------

    def _annotate(self, plan: algebra.LogicalPlan) -> Annotation:
        annotation = Annotation()
        self._annotate_node(plan, annotation)
        return annotation

    def _annotate_node(
        self, node: algebra.LogicalPlan, annotation: Annotation
    ) -> str:
        if isinstance(node, algebra.Scan):
            if node.source_db is None:
                raise OptimizerError(
                    f"scan of {node.table!r} lacks a source DBMS"
                )
            annotation.bind_node(node, node.source_db)
            return node.source_db
        children = node.children()
        child_dbs = [
            self._annotate_node(child, annotation) for child in children
        ]
        if len(children) == 1:
            db = child_dbs[0]
        else:
            same = child_dbs[0] if len(set(child_dbs)) == 1 else None
            if same is not None and same != MEDIATOR and (
                self.pushdown_colocated_joins
            ):
                db = same
            else:
                db = MEDIATOR
        annotation.bind_node(node, db)
        for child in children:
            annotation.bind_edge(child, node, Movement.EXPLICIT)
        return db

    # -- run --------------------------------------------------------------------

    def run(self, query: str) -> BaselineReport:
        """Execute ``query`` through the mediator and report metrics."""
        network = self.deployment.network
        ledger = network.log
        mark = len(ledger)

        select = parse_statement(query)
        if not isinstance(select, ast.QUERY_STATEMENTS):
            raise OptimizerError("baselines accept SELECT queries only")
        plan = self.optimizer.optimize(select)
        annotation = self._annotate(plan)
        dplan = self.finalizer.finalize(plan, annotation)

        # 1. Push every non-mediator task down and fetch its result.
        fetch_times: List[float] = []
        fetch_bytes_total = 0
        fetch_rows_total = 0
        source_processing: List[float] = []
        temp_names: Dict[int, str] = {}
        subqueries = 0
        for task in dplan.topological():
            if task.annotation == MEDIATOR:
                continue
            if any(
                dplan.tasks[e.producer_id].annotation == MEDIATOR
                for e in dplan.in_edges(task)
            ):
                raise OptimizerError(
                    "MW decomposition produced a source task depending on "
                    "the mediator"
                )
            subqueries += 1
            connector = self.connectors[task.annotation]
            subquery = plan_to_select(task.expr)
            result = connector.fetch(
                subquery, tag=f"mediator-fetch:{task.task_id}"
            )
            temp_name = self._materialize(task, result)
            temp_names[task.task_id] = temp_name

            proc = self._source_processing_seconds(task, connector)
            payload = int(
                result.byte_size() * PROTOCOL_FACTORS[self.protocol]
            )
            fetch_bytes_total += payload
            fetch_rows_total += len(result)
            latency = network.link_for(
                connector.node, self.mediator.node
            ).latency
            fetch_times.append(proc + latency)
            source_processing.append(proc)

        # 2. Execute the mediator task(s) over the temp tables.
        mediator_tasks = [
            task
            for task in dplan.topological()
            if task.annotation == MEDIATOR
        ]
        result = None
        mediator_proc = 0.0
        for task in mediator_tasks:
            for edge in dplan.in_edges(task):
                child = dplan.tasks[edge.producer_id]
                if child.annotation == MEDIATOR:
                    raise OptimizerError(
                        "nested mediator tasks should have been fused"
                    )
                self._resolve_placeholder(task, edge.placeholder,
                                          temp_names[child.task_id])
            mediator_proc += self._mediator_processing_seconds(task)
            result = self.mediator.execute_select(plan_to_select(task.expr))

        if result is None:
            # Fully pushable query (single source): fetch is the result.
            root_temp = temp_names[dplan.root.task_id]
            result = self.mediator.execute(
                f"SELECT * FROM {root_temp}"
            )

        # 3. Result to the client.
        result_bytes = result.byte_size()
        network.record_transfer(
            src=self.mediator.node,
            dst=self.deployment.client_node,
            payload_bytes=result_bytes,
            rows=len(result),
            tag="result",
            protocol=self.protocol,
        )

        self._cleanup(list(temp_names.values()))

        # --- timeline ------------------------------------------------------
        # Data movement to the mediator has two components: the wire time
        # on its ingress link, and — dominantly — the per-row
        # (de)serialization the mediator pays for every fetched tuple
        # (the cost the paper isolates by preloading local tables).
        wire_seconds = network.transfer_time(
            self._slowest_source_node(dplan),
            self.mediator.node,
            fetch_bytes_total,
        )
        ingest_seconds = self._ingest_seconds(fetch_rows_total)
        fetch_phase = max(fetch_times, default=0.0)
        mediator_seconds = (
            self.mediator.profile.startup_latency
            + mediator_proc / max(self.workers, 1)
        )
        result_transfer = network.transfer_time(
            self.mediator.node, self.deployment.client_node, result_bytes
        )
        transfer_seconds = wire_seconds + ingest_seconds + result_transfer
        processing_seconds = fetch_phase + mediator_seconds
        total = processing_seconds + transfer_seconds

        return BaselineReport(
            system=self.name,
            result=result,
            total_seconds=total,
            processing_seconds=processing_seconds,
            transfer_seconds=transfer_seconds,
            transfers=summarize(ledger[mark:]),
            subquery_count=subqueries,
            details={
                "fetch_phase": fetch_phase,
                "wire": wire_seconds,
                "ingest": ingest_seconds,
                "mediator_processing": mediator_seconds,
                "result_transfer": result_transfer,
            },
        )

    # -- helpers ---------------------------------------------------------------

    def _materialize(self, task: Task, result: Result) -> str:
        self._temp_counter += 1
        name = f"mw_tmp_{self._temp_counter}"
        self.mediator.create_table(name, result.schema, result.rows)
        return name

    @staticmethod
    def _resolve_placeholder(task: Task, placeholder: str, table: str) -> None:
        for scan in task.expr.leaves():
            if scan.placeholder and scan.binding == placeholder:
                scan.table = table
                scan.placeholder = False
                return
        raise OptimizerError(
            f"placeholder {placeholder!r} missing in mediator task"
        )

    def _source_processing_seconds(
        self, task: Task, connector: DBMSConnector
    ) -> float:
        database = connector.database
        estimator = CardinalityEstimator(database.planner.scan_stats)
        cost = CostModel(database.profile).plan_cost(task.expr, estimator)
        return database.profile.startup_latency + (
            database.profile.cost_to_seconds(cost)
        )

    def _mediator_processing_seconds(self, task: Task) -> float:
        def stats(scan: algebra.Scan) -> ScanStats:
            return self.mediator.planner.scan_stats(scan)

        estimator = CardinalityEstimator(stats)
        cost = CostModel(self.mediator.profile).plan_cost(
            task.expr, estimator
        )
        return self.mediator.profile.cost_to_seconds(cost)

    def _ingest_seconds(self, rows: int) -> float:
        """Per-row fetch/decode cost at the mediator (not parallelized —
        the connectors deliver row streams through the coordinator)."""
        profile = self.mediator.profile
        factor = PROTOCOL_CPU_FACTORS[self.protocol]
        return profile.cost_to_seconds(
            rows * profile.foreign_fetch_cost_per_row * factor
        )

    def _slowest_source_node(self, dplan: DelegationPlan) -> str:
        for task in dplan.topological():
            if task.annotation != MEDIATOR:
                return self.connectors[task.annotation].node
        return self.mediator.node

    def _cleanup(self, temp_tables: List[str]) -> None:
        for name in temp_tables:
            self.mediator.execute(f"DROP TABLE IF EXISTS {name}")
