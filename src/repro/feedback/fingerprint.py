"""Canonical, join-order-insensitive subexpression fingerprints.

The feedback store keys corrected cardinalities by a *semantic*
fingerprint of the subexpression that produced the observed rows, not
by plan shape: the whole point is that the next plan may join the same
tables in a different order (that is what the feedback is *for*), and
it must still find the correction.

The fingerprint therefore hashes an order-independent summary:

* the set of base tables (``db.table``),
* the set of filter/join conjuncts, rendered to canonical SQL with
  equality operand order normalized,
* the cardinality-relevant operator markers (aggregate keys and
  functions, DISTINCT, LIMIT, LEFT-join shape, UNION arity).

Projections, sorts and join order deliberately do not participate —
they cannot change a subtree's cardinality.

Bare base-table scans keep a readable ``scan:db.table`` form (no hash)
so the store doubles as a human-auditable table-cardinality ledger.
"""

from __future__ import annotations

import hashlib
from typing import List, Set

from repro.relational import algebra
from repro.sql import ast
from repro.sql.render import render


def table_key(db: str, table: str) -> str:
    return f"{(db or '?').lower()}.{table.lower()}"


def scan_fingerprint(db: str, table: str) -> str:
    return f"scan:{table_key(db, table)}"


def fingerprint(plan: algebra.LogicalPlan) -> str:
    """The canonical fingerprint of ``plan``."""
    if isinstance(plan, algebra.Scan) and not plan.placeholder:
        return scan_fingerprint(plan.source_db or "?", plan.table)
    tables: Set[str] = set()
    preds: Set[str] = set()
    marks: Set[str] = set()
    _collect(plan, tables, preds, marks)
    text = "t=" + ",".join(sorted(tables))
    text += "|p=" + ",".join(sorted(preds))
    text += "|m=" + ",".join(sorted(marks))
    digest = hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]
    return f"expr:{digest}"


def base_tables(plan: algebra.LogicalPlan) -> List[str]:
    """Sorted ``db.table`` keys of every base table under ``plan``."""
    tables: Set[str] = set()
    for node in _walk(plan):
        if isinstance(node, algebra.Scan) and not node.placeholder:
            tables.add(table_key(node.source_db or "?", node.table))
    return sorted(tables)


def _walk(node: algebra.LogicalPlan):
    yield node
    for child in node.children():
        yield from _walk(child)


def _render(expr: ast.Expression) -> str:
    try:
        return render(expr)
    except Exception:  # exotic node: fall back to a stable repr
        return repr(expr)


def _conjunct_keys(predicate: ast.Expression) -> Set[str]:
    keys: Set[str] = set()
    for conj in ast.conjuncts(predicate):
        if isinstance(conj, ast.BinaryOp) and conj.op == "=":
            sides = sorted((_render(conj.left), _render(conj.right)))
            keys.add(f"{sides[0]} = {sides[1]}")
        else:
            keys.add(_render(conj))
    return keys


def _collect(
    node: algebra.LogicalPlan,
    tables: Set[str],
    preds: Set[str],
    marks: Set[str],
) -> None:
    if isinstance(node, algebra.Scan):
        if node.placeholder:
            # A pinned/placeholder input contributes its binding: two
            # plans reading the same materialized boundary agree.
            tables.add(f"pin:{node.binding.lower()}")
        else:
            tables.add(table_key(node.source_db or "?", node.table))
        return
    if isinstance(node, algebra.Filter):
        preds.update(_conjunct_keys(node.predicate))
    elif isinstance(node, algebra.Join):
        if node.condition is not None:
            preds.update(_conjunct_keys(node.condition))
        if node.kind == "LEFT":
            # LEFT joins are asymmetric: the preserved side matters.
            marks.add(f"left:{fingerprint(node.left)}")
    elif isinstance(node, algebra.Aggregate):
        keys = sorted(_render(key.expr) for key in node.keys)
        funcs = sorted(
            f"{spec.func}({_render(spec.arg) if spec.arg is not None else '*'})"
            + ("#d" if spec.distinct else "")
            for spec in node.aggregates
        )
        marks.add("agg:" + ",".join(keys) + "/" + ",".join(funcs))
    elif isinstance(node, algebra.Limit):
        marks.add(f"limit:{node.count}")
    elif isinstance(node, algebra.Distinct):
        marks.add("distinct")
    elif isinstance(node, algebra.Union):
        marks.add("union")
    # Project / Sort / Alias cannot change cardinality: recurse only.
    for child in node.children():
        _collect(child, tables, preds, marks)
