"""The persistent cardinality-feedback store and its planner overlay.

:class:`FeedbackStore` is the durable half of the Q-Error loop: a
JSON-backed map (same crash-safe idiom as the drift
:class:`~repro.drift.ledger.ObjectLedger` — in-memory dict, atomic
temp-file-then-rename persistence, thread-safe) from canonical
subexpression fingerprints to corrected cardinalities observed at
execution time.

:class:`FeedbackOverlay` is the read side: handed to the cardinality
estimator, it intercepts every node estimate, fingerprints the
subtree, and substitutes the learned row count when one is known —
which transparently re-steers both the Selinger join-order DP and the
Rule-4 placement costing (they both read ``estimated_rows``).

Staleness: learned cardinalities are only as good as the schema they
were observed under.  :meth:`FeedbackStore.invalidate_table` drops
every entry touching a table and is wired into the drift-recovery
path, so a re-introspected table forgets its corrections along with
its fingerprint.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.feedback import qerror
from repro.feedback.fingerprint import base_tables, fingerprint


@dataclass
class Observation:
    """One (estimate, actual) pair harvested from an execution."""

    fingerprint: str
    kind: str  # "scan" | "task"
    locus: str  # qerror.JOIN / SCAN / AGGREGATE
    tables: List[str]  # "db.table" keys the subtree reads
    estimated_rows: float
    actual_rows: float
    label: str = ""  # human-readable locus (table or task notation)

    @property
    def q_error(self) -> float:
        return qerror.q_error(self.estimated_rows, self.actual_rows)

    @property
    def direction(self) -> str:
        return qerror.direction(self.estimated_rows, self.actual_rows)


@dataclass
class FeedbackEntry:
    """A learned cardinality for one fingerprint."""

    fingerprint: str
    kind: str
    tables: List[str] = field(default_factory=list)
    estimated_rows: float = 0.0
    actual_rows: float = 0.0
    qerror: float = 1.0
    hits: int = 1


class FeedbackStore:
    """Fingerprint → corrected cardinality, optionally persisted."""

    def __init__(self, path: Optional[str] = None):
        self._path = path
        self._lock = threading.Lock()
        self._entries: Dict[str, FeedbackEntry] = {}
        if path is not None and os.path.exists(path):
            self._load(path)

    # -- observation ----------------------------------------------------

    def observe(self, obs: Observation) -> FeedbackEntry:
        """Record (or refresh) the learned cardinality for ``obs``."""
        with self._lock:
            entry = self._entries.get(obs.fingerprint)
            if entry is None:
                entry = FeedbackEntry(
                    fingerprint=obs.fingerprint,
                    kind=obs.kind,
                    tables=list(obs.tables),
                    estimated_rows=float(obs.estimated_rows),
                    actual_rows=float(obs.actual_rows),
                    qerror=obs.q_error,
                )
                self._entries[obs.fingerprint] = entry
            else:
                entry.actual_rows = float(obs.actual_rows)
                entry.estimated_rows = float(obs.estimated_rows)
                entry.qerror = obs.q_error
                entry.hits += 1
            self._persist()
            return entry

    def observe_many(self, observations: Iterable[Observation]) -> int:
        count = 0
        for obs in observations:
            self.observe(obs)
            count += 1
        return count

    # -- lookup ---------------------------------------------------------

    def correction(self, fp: str) -> Optional[float]:
        """The learned row count for ``fp``, or None."""
        with self._lock:
            entry = self._entries.get(fp)
            return None if entry is None else entry.actual_rows

    def get(self, fp: str) -> Optional[FeedbackEntry]:
        with self._lock:
            return self._entries.get(fp)

    def entries(self) -> List[FeedbackEntry]:
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- staleness ------------------------------------------------------

    def invalidate_table(self, db: str, table: str) -> int:
        """Drop every entry whose subtree reads ``db.table``.

        Called from drift recovery: a re-introspected (or quarantined)
        table invalidates the cardinalities observed under its old
        schema.  Returns the number of entries dropped.
        """
        key = f"{db.lower()}.{table.lower()}"
        with self._lock:
            doomed = [
                fp
                for fp, entry in self._entries.items()
                if key in entry.tables
            ]
            for fp in doomed:
                del self._entries[fp]
            if doomed:
                self._persist()
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._persist()

    # -- persistence (ObjectLedger idiom) -------------------------------

    def _persist(self) -> None:
        if self._path is None:
            return
        payload = {
            "entries": [
                {
                    "fingerprint": e.fingerprint,
                    "kind": e.kind,
                    "tables": list(e.tables),
                    "estimated_rows": e.estimated_rows,
                    "actual_rows": e.actual_rows,
                    "qerror": e.qerror if e.qerror != qerror.INFINITE else -1.0,
                    "hits": e.hits,
                }
                for e in self._entries.values()
            ]
        }
        tmp = f"{self._path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        os.replace(tmp, self._path)

    def _load(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for raw in payload.get("entries", []):
            q = float(raw.get("qerror", 1.0))
            entry = FeedbackEntry(
                fingerprint=str(raw["fingerprint"]),
                kind=str(raw.get("kind", "task")),
                tables=[str(t) for t in raw.get("tables", [])],
                estimated_rows=float(raw.get("estimated_rows", 0.0)),
                actual_rows=float(raw.get("actual_rows", 0.0)),
                qerror=qerror.INFINITE if q < 0 else q,
                hits=int(raw.get("hits", 1)),
            )
            self._entries[entry.fingerprint] = entry


class FeedbackOverlay:
    """The estimator-facing view: fingerprint a node, apply a learned
    cardinality when one exists.

    ``corrections`` holds transient, higher-priority overrides — the
    mid-query adaptivity path uses it to pin the actuals it just
    observed without waiting for (or requiring) a persistent store.
    """

    def __init__(
        self,
        store: Optional[FeedbackStore] = None,
        corrections: Optional[Dict[str, float]] = None,
    ):
        self._store = store
        self._corrections: Dict[str, float] = dict(corrections or {})
        # id-keyed fingerprint cache with identity pinning (the same
        # idiom as the estimator's memo): fingerprints render SQL, so
        # computing one per estimator call would be quadratic.
        self._fingerprints: Dict[int, Tuple[object, str]] = {}
        self.applied = 0

    def pin(self, fp: str, rows: float) -> None:
        self._corrections[fp] = float(rows)

    def fingerprint_of(self, plan) -> str:
        cached = self._fingerprints.get(id(plan))
        if cached is not None and cached[0] is plan:
            return cached[1]
        fp = fingerprint(plan)
        self._fingerprints[id(plan)] = (plan, fp)
        return fp

    def correct(self, plan, default_rows: float) -> Optional[float]:
        """The corrected row count for ``plan``, or None to keep the
        model's estimate."""
        fp = self.fingerprint_of(plan)
        value = self._corrections.get(fp)
        if value is None and self._store is not None:
            value = self._store.correction(fp)
        if value is None:
            return None
        value = max(float(value), 0.0)
        if value != default_rows:
            self.applied += 1
        return value


def observe_expr(
    store_or_overlay,
    expr,
    actual_rows: float,
    estimated_rows: Optional[float] = None,
    kind: str = "task",
    label: str = "",
) -> Observation:
    """Build (and record) an observation for a plan subtree."""
    obs = Observation(
        fingerprint=fingerprint(expr),
        kind=kind,
        locus=qerror.locus_of(expr),
        tables=base_tables(expr),
        estimated_rows=float(
            estimated_rows
            if estimated_rows is not None
            else (expr.estimated_rows or 0.0)
        ),
        actual_rows=float(actual_rows),
        label=label,
    )
    if store_or_overlay is not None:
        store_or_overlay.observe(obs)
    return obs
