"""Q-Error arithmetic and the symptom-routing table.

Q-Error is the planner's own report card: for every operator with an
estimated and an observed cardinality,

    q = max(estimated / actual, actual / estimated)

A perfect estimate scores 1.0; the score grows symmetrically however
the planner missed.  The operator with the *highest* Q-Error is where
the planner's worst decision lives, and the (locus, direction) pair
routes to a primary rewrite hypothesis — the quantitative routing
table distilled from the EXPLAIN-pathology playbooks in SNIPPETS.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.relational import algebra

INFINITE = float("inf")

#: Direction labels for a mis-estimate.
UNDER_EST = "UNDER_EST"
OVER_EST = "OVER_EST"
ZERO_EST = "ZERO_EST"
EXACT = "EXACT"

#: Locus labels (the operator class the estimate belongs to).
JOIN = "JOIN"
SCAN = "SCAN"
AGGREGATE = "AGGREGATE"


def q_error(estimated: Optional[float], actual: Optional[float]) -> float:
    """``max(est/actual, actual/est)`` with the zero corners pinned.

    Both zero → 1.0 (the planner was right about nothing); exactly one
    zero → infinity (the worst possible miss — a plan built on a
    cardinality of zero, or blind to rows that do exist).
    """
    est = max(float(estimated or 0.0), 0.0)
    act = max(float(actual or 0.0), 0.0)
    if est <= 0.0 and act <= 0.0:
        return 1.0
    if est <= 0.0 or act <= 0.0:
        return INFINITE
    return max(est / act, act / est)


def direction(estimated: Optional[float], actual: Optional[float]) -> str:
    """Classify the miss: ZERO_EST / UNDER_EST / OVER_EST / EXACT."""
    est = max(float(estimated or 0.0), 0.0)
    act = max(float(actual or 0.0), 0.0)
    if est <= 0.0 and act > 0.0:
        return ZERO_EST
    if est < act:
        return UNDER_EST
    if est > act:
        return OVER_EST
    return EXACT


#: (locus, direction) → (rewrite ids, why) — the Q-Error routing table.
ROUTING = {
    (JOIN, UNDER_EST): (
        "P2",
        "decorrelate: the planner thinks the join is cheap and it is not",
    ),
    (JOIN, ZERO_EST): (
        "P0,P2",
        "the planner has no join estimate at all",
    ),
    (JOIN, OVER_EST): (
        "P5",
        "LEFT->INNER: the planner over-provisions for NULLs",
    ),
    (SCAN, OVER_EST): (
        "P1,P4",
        "redundant scans or missed pruning",
    ),
    (SCAN, ZERO_EST): (
        "P2",
        "a zero scan estimate usually hides a correlation",
    ),
}


def hypothesis(locus: str, miss: str) -> Optional[Tuple[str, str]]:
    """The routed (rewrite ids, rationale) pair, or None when the
    table has no entry (e.g. aggregates, or an exact estimate)."""
    return ROUTING.get((locus, miss))


def locus_of(expr: Optional[algebra.LogicalPlan]) -> str:
    """The dominant estimate locus of a plan subtree.

    A join anywhere in the subtree makes it a JOIN locus (join-order
    and placement decisions hang off that estimate); otherwise an
    aggregate wins; a bare scan pipeline is a SCAN locus.
    """
    if expr is None:
        return SCAN
    found_agg = False
    for node in _walk(expr):
        if isinstance(node, (algebra.Join, algebra.Union)):
            return JOIN
        if isinstance(node, algebra.Aggregate):
            found_agg = True
    return AGGREGATE if found_agg else SCAN


def _walk(node: algebra.LogicalPlan):
    yield node
    for child in node.children():
        yield from _walk(child)


def median(values: Sequence[float]) -> float:
    """Median of ``values`` (0.0 when empty); infinities participate."""
    ordered: List[float] = sorted(float(v) for v in values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    low, high = ordered[mid - 1], ordered[mid]
    if low == INFINITE or high == INFINITE:
        return INFINITE
    return (low + high) / 2.0
