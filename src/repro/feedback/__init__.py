"""Cardinality feedback: the Q-Error loop.

Estimates live in the Selinger DP and the Rule-4 placement costing;
actuals live in the span tree (``rows_out``) and the delegation plan's
edge statistics.  This package closes the loop:

* :mod:`repro.feedback.qerror` — Q-Error arithmetic and the
  symptom-routing table (locus × direction → rewrite hypothesis);
* :mod:`repro.feedback.fingerprint` — canonical, join-order-
  insensitive subexpression fingerprints;
* :mod:`repro.feedback.store` — the persistent
  :class:`FeedbackStore` and the estimator-facing
  :class:`FeedbackOverlay`;
* :mod:`repro.feedback.harvest` — extraction of (estimate, actual)
  pairs from an executed query's delegation plan and span tree.
"""

from repro.feedback.fingerprint import (  # noqa: F401
    base_tables,
    fingerprint,
    scan_fingerprint,
    table_key,
)
from repro.feedback.harvest import (  # noqa: F401
    harvest_execution,
    harvest_scans,
    harvest_tasks,
)
from repro.feedback.qerror import (  # noqa: F401
    AGGREGATE,
    EXACT,
    JOIN,
    OVER_EST,
    ROUTING,
    SCAN,
    UNDER_EST,
    ZERO_EST,
    direction,
    hypothesis,
    locus_of,
    median,
    q_error,
)
from repro.feedback.report import (  # noqa: F401
    median_q_error,
    qerror_table,
)
from repro.feedback.store import (  # noqa: F401
    FeedbackEntry,
    FeedbackOverlay,
    FeedbackStore,
    Observation,
    observe_expr,
)
