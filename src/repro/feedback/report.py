"""Rendering the Q-Error loop's findings for ``explain_analyze``.

One row per harvested observation — estimated vs actual rows and the
Q-Error — sorted worst first; the worst row is flagged as the
*planning locus* (where the planner's most consequential mis-decision
lives) and, when the (locus, direction) pair has an entry in the
routing table, the routed rewrite hypothesis is printed under it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.feedback import qerror
from repro.feedback.store import Observation


def _fmt_rows(value: float) -> str:
    if value == qerror.INFINITE:
        return "inf"
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:g}"


def _fmt_q(value: float) -> str:
    return "inf" if value == qerror.INFINITE else f"{value:.2f}"


def qerror_table(observations: Sequence[Observation]) -> str:
    """The per-operator Q-Error section of ``explain_analyze``."""
    if not observations:
        return ""
    ordered = sorted(
        observations, key=lambda obs: obs.q_error, reverse=True
    )
    worst = ordered[0]
    lines: List[str] = ["q-error (worst first):"]
    for obs in ordered:
        flag = "  ◀ planning locus" if obs is worst else ""
        lines.append(
            f"  {obs.label or obs.fingerprint:<28} "
            f"[{obs.locus.lower():>9}] "
            f"est={_fmt_rows(obs.estimated_rows):>10} "
            f"act={_fmt_rows(obs.actual_rows):>10} "
            f"q={_fmt_q(obs.q_error):>8} "
            f"{obs.direction:<9}{flag}"
        )
    routed = qerror.hypothesis(worst.locus, worst.direction)
    if routed is not None and worst.q_error > 1.0:
        rewrites, why = routed
        lines.append(f"  hypothesis: {rewrites} — {why}")
    return "\n".join(lines)


def median_q_error(observations: Sequence[Observation]) -> float:
    """Median Q-Error across ``observations`` (0.0 when none)."""
    return qerror.median([obs.q_error for obs in observations])
