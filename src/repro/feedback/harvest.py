"""Harvesting (estimate, actual) pairs out of an executed query.

Two sources, both already recorded by the observability spine:

* **Task boundaries** — every delegation-plan task carries the
  optimizer's estimate (``Task.estimated_rows``) and, after
  :func:`~repro.core.timing.attribute_edge_stats`, its out-edge
  carries the rows that actually crossed the boundary
  (``TaskEdge.moved_rows``).  The root task's actual is the result's
  row count.  Each pair is keyed by the fingerprint of the task's
  *pre-finalization* logical subtree (``Task.source_expr``), so the
  correction survives re-finalization into a different task cutting.
* **Base-table scans** — the executor mirrors every physical operator
  into ``kind="operator"`` spans; a ``SeqScan[t]`` span's ``rows_out``
  is the table's true cardinality, compared against the catalog's
  (possibly stale or skewed) ``row_count``.  Delegated objects
  (``xf_``/``xm_``/``xv_`` and partition shards) are skipped — they
  are plan artifacts, not base tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.feedback import qerror
from repro.feedback.fingerprint import (
    base_tables,
    fingerprint,
    scan_fingerprint,
    table_key,
)
from repro.feedback.store import Observation

#: Name prefixes of delegated catalog objects (never base tables).
DELEGATED_PREFIXES = ("xf_", "xm_", "xv_", "__placeholder_")


def is_delegated_name(table: str) -> bool:
    lowered = table.lower()
    if lowered.startswith(DELEGATED_PREFIXES):
        return True
    # Partition shards look like "<table>__p<i>"; their counts belong
    # to the shard, not the logical table the fingerprints use.
    base, sep, tail = lowered.rpartition("__p")
    return bool(sep) and bool(base) and tail.isdigit()


def harvest_tasks(dplan, result_rows: Optional[int]) -> List[Observation]:
    """Observations for every task boundary with a measured actual."""
    out: List[Observation] = []
    if dplan is None:
        return out
    for task in dplan.tasks.values():
        src = getattr(task, "source_expr", None)
        if src is None:
            continue
        if task.task_id == dplan.root_id:
            if result_rows is None:
                continue
            actual = float(result_rows)
        else:
            edge = dplan.out_edge(task)
            if edge is None or edge.moved_rows is None:
                continue
            actual = float(edge.moved_rows)
            if actual <= 0.0:
                # 0 is ambiguous: attribute_edge_stats writes (0, 0)
                # for edges no transfer record matched.  Don't learn
                # "this subtree is empty" from a bookkeeping gap.
                continue
        out.append(
            Observation(
                fingerprint=fingerprint(src),
                kind="task",
                locus=qerror.locus_of(src),
                tables=base_tables(src),
                estimated_rows=float(task.estimated_rows or 0.0),
                actual_rows=actual,
                label=f"task {task.task_id}@{task.annotation}",
            )
        )
    return out


def harvest_scans(exec_span, catalog) -> List[Observation]:
    """Observations for every base-table scan the engines executed."""
    if exec_span is None:
        return []
    best: Dict[str, Observation] = {}
    for span in exec_span.find_all(kind="operator"):
        name = span.name
        if not (name.startswith("SeqScan[") and name.endswith("]")):
            continue
        table = name[len("SeqScan[") : -1]
        db = str(span.attributes.get("db", "") or "")
        if not db or is_delegated_name(table):
            continue
        stats = catalog.stats_of(db, table)
        if stats is None:
            continue
        actual = float(span.attributes.get("rows_out", 0) or 0)
        obs = Observation(
            fingerprint=scan_fingerprint(db, table),
            kind="scan",
            locus=qerror.SCAN,
            tables=[table_key(db, table)],
            estimated_rows=float(stats.row_count),
            actual_rows=actual,
            label=f"{db}.{table}",
        )
        prior = best.get(obs.fingerprint)
        if prior is None or obs.actual_rows > prior.actual_rows:
            best[obs.fingerprint] = obs
    return list(best.values())


def harvest_execution(
    dplan, exec_span, catalog, result_rows: Optional[int]
) -> List[Observation]:
    """All feedback observations from one completed execution."""
    return harvest_tasks(dplan, result_rows) + harvest_scans(
        exec_span, catalog
    )
