"""The fault-injection harness.

The injector sits between a :class:`FaultPolicy` and a live
deployment.  Installation hooks every connector (the connector's
``_guarded`` retry loop calls :meth:`before_call` ahead of each
attempt) and applies the policy's link faults to the network.  The
injector never mutates query results — it only raises structured
errors the resilience layer must absorb.
"""

from __future__ import annotations

import random
import re
import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import EngineUnavailableError, TransientConnectorError
from repro.faults.policy import FaultPolicy


def _references_table(detail: Optional[str], table: str) -> bool:
    """Whether a call payload mentions ``table`` as a whole identifier.

    Word-bounded so shard names stay distinct (``orders__p3`` must not
    match a call touching ``orders__p30``).
    """
    if not detail:
        return False
    return (
        re.search(
            rf"\b{re.escape(table)}\b", detail, flags=re.IGNORECASE
        )
        is not None
    )


class FaultInjector:
    """Interprets a :class:`FaultPolicy` against guarded connector calls."""

    def __init__(self, policy: FaultPolicy):
        self.policy = policy
        self._rng = random.Random(policy.seed)
        # the overload benchmark injects faults from concurrent client
        # threads; the counters and RNG draw must stay consistent
        self._lock = threading.Lock()
        #: guarded calls seen per DBMS (attempts, including retries)
        self.calls_by_db: Dict[str, int] = {}
        #: matching calls per shard-scoped outage, keyed (db, table)
        self.calls_by_shard: Dict[Tuple[str, str], int] = {}
        #: matching-call counters per scripted fault (by index)
        self._script_hits: List[int] = [0] * len(policy.scripted)
        #: injected transient errors (for reporting)
        self.injected_transients = 0
        #: guarded calls rejected by an engine outage
        self.injected_outage_rejections = 0
        #: schema drifts already applied (each fires once)
        self._drifts_applied: List[bool] = [False] * len(policy.drifts)
        self.injected_drifts = 0
        self._deployment = None

    # -- lifecycle ------------------------------------------------------

    def install(self, deployment) -> "FaultInjector":
        """Hook every connector and apply link faults; returns self."""
        if self._deployment is not None:
            raise ValueError("fault injector is already installed")
        self._deployment = deployment
        for connector in deployment.connectors.values():
            connector.fault_injector = self
        network = deployment.network
        for fault in self.policy.link_faults:
            if fault.partitioned:
                network.partition_link(
                    fault.src, fault.dst, symmetric=fault.symmetric
                )
            if fault.latency_factor != 1.0 or fault.bandwidth_factor != 1.0:
                network.degrade_link(
                    fault.src,
                    fault.dst,
                    latency_factor=fault.latency_factor,
                    bandwidth_factor=fault.bandwidth_factor,
                    symmetric=fault.symmetric,
                )
        return self

    def uninstall(self) -> None:
        """Remove the hooks and heal every injected link fault."""
        if self._deployment is None:
            return
        for connector in self._deployment.connectors.values():
            if connector.fault_injector is self:
                connector.fault_injector = None
        network = self._deployment.network
        for fault in self.policy.link_faults:
            if fault.partitioned:
                network.heal_link(
                    fault.src, fault.dst, symmetric=fault.symmetric
                )
            if fault.latency_factor != 1.0 or fault.bandwidth_factor != 1.0:
                network.restore_link(
                    fault.src, fault.dst, symmetric=fault.symmetric
                )
        self._deployment = None

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()

    # -- probes (non-consuming) ----------------------------------------

    def engine_down(self, db: str) -> bool:
        """Whether the *next* guarded call to ``db`` would hit an outage.

        A probe: consumes neither the call counter nor the RNG, so the
        annotator can test availability without perturbing the fault
        schedule.  Shard-scoped outages do not count — they strike one
        table, not the engine.
        """
        outage = self._outage_for(db)
        if outage is None:
            return False
        return outage.down_at(self.calls_by_db.get(db, 0) + 1)

    def shard_down(self, db: str, table: str) -> bool:
        """Whether the next call touching ``db.table`` would be struck.

        The shard-level twin of :meth:`engine_down`, equally
        non-consuming.
        """
        for outage in self.policy.outages:
            if (
                outage.db == db
                and outage.table is not None
                and outage.table.lower() == table.lower()
            ):
                key = (db, outage.table.lower())
                if outage.down_at(self.calls_by_shard.get(key, 0) + 1):
                    return True
        return False

    def _outage_for(self, db: str):
        for outage in self.policy.outages:
            if outage.db == db and outage.table is None:
                return outage
        return None

    def _apply_drift(self, drift) -> None:
        if self._deployment is None:
            return
        # Imported lazily: repro.drift pulls in the engine layer, which
        # the injector itself must not depend on at import time.
        from repro.drift.mutate import apply_drift

        apply_drift(self._deployment.database(drift.db), drift)
        self.injected_drifts += 1

    # -- the injection point -------------------------------------------

    def before_call(self, db: str, op: str, detail: Optional[str] = None) -> None:
        """Called by the connector ahead of every guarded attempt.

        Raises the injected fault, if any; otherwise returns and the
        real call proceeds.  ``detail`` is the call's payload when the
        connector has one (rendered DDL, query text, a table name) —
        shard-scoped outages match against it.
        """
        with self._lock:
            count = self.calls_by_db.get(db, 0) + 1
            self.calls_by_db[db] = count

            # Shard-scoped outages first: they consume their own
            # matching-call counters and never touch the engine-wide
            # schedule, so composing them with whole-engine faults
            # stays deterministic.
            for outage in self.policy.outages:
                if (
                    outage.db != db
                    or outage.table is None
                    or not _references_table(detail, outage.table)
                ):
                    continue
                key = (db, outage.table.lower())
                shard_count = self.calls_by_shard.get(key, 0) + 1
                self.calls_by_shard[key] = shard_count
                if outage.down_at(shard_count):
                    self.injected_outage_rejections += 1
                    raise EngineUnavailableError(
                        f"injected shard outage: {outage.table!r} on "
                        f"DBMS {db!r} is unreachable (matching call "
                        f"{shard_count}, outage after "
                        f"{outage.after_calls})",
                        db=db,
                        table=outage.table,
                    )

            # Schema drifts fire once, when their target engine's call
            # counter passes the trigger — the mutation lands *before*
            # the call proceeds, like a DBA's DDL racing the federation.
            for index, drift in enumerate(self.policy.drifts):
                if (
                    not self._drifts_applied[index]
                    and drift.db == db
                    and count > drift.after_calls
                ):
                    self._drifts_applied[index] = True
                    self._apply_drift(drift)

            outage = self._outage_for(db)
            if outage is not None and outage.down_at(count):
                self.injected_outage_rejections += 1
                raise EngineUnavailableError(
                    f"injected outage: DBMS {db!r} is down "
                    f"(call {count}, outage after {outage.after_calls})",
                    db=db,
                )

            for index, scripted in enumerate(self.policy.scripted):
                if scripted.matches(db, op):
                    self._script_hits[index] += 1
                    if self._script_hits[index] == scripted.nth:
                        self.injected_transients += 1
                        raise TransientConnectorError(
                            f"injected scripted fault: {op} call "
                            f"#{scripted.nth} on {db!r}"
                        )

            rate = self.policy.rate_for(db)
            if rate > 0.0 and self._rng.random() < rate:
                self.injected_transients += 1
                raise TransientConnectorError(
                    f"injected transient error on {db!r} during {op}"
                )


def install_faults(deployment, policy: FaultPolicy) -> FaultInjector:
    """Convenience: build an injector for ``policy`` and install it."""
    return FaultInjector(policy).install(deployment)


def clear_faults(deployment, injector: Optional[FaultInjector]) -> None:
    """Uninstall ``injector`` (tolerates ``None`` for symmetric code)."""
    if injector is not None:
        injector.uninstall()
