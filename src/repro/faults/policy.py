"""Declarative fault policies.

A policy is pure data: what to break, where, and how often.  The
:class:`~repro.faults.injector.FaultInjector` interprets it against a
deployment.  Operation tags match the connector's guarded call sites:
``"metadata"``, ``"consult"``, ``"ddl"``, ``"query"``, ``"fetch"``,
and ``"probe"`` (a circuit breaker's half-open probe) — ``"*"``
matches any of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

#: Guarded-operation tags a fault may target.
OPERATIONS = ("metadata", "consult", "ddl", "query", "fetch", "probe")


@dataclass(frozen=True)
class LinkFault:
    """A slow or partitioned network link between two *nodes*.

    ``latency_factor``/``bandwidth_factor`` degrade the link (see
    :meth:`Network.degrade_link`); ``partitioned=True`` cuts it
    entirely until the injector is uninstalled (or the network healed).
    """

    src: str
    dst: str
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    partitioned: bool = False
    symmetric: bool = True


@dataclass(frozen=True)
class EngineOutage:
    """An engine-down window for one DBMS, measured in guarded calls.

    The first ``after_calls`` guarded calls to the engine succeed; the
    following ``duration_calls`` attempts fail with
    :class:`EngineUnavailableError` (``None`` = the engine never comes
    back while the injector is installed).

    ``table`` narrows the outage to a single relation (typically one
    partition shard, ``orders__p3``): only guarded calls whose payload
    references that table are struck, counted in *matching* calls, and
    the raised error carries ``table`` so recovery can quarantine the
    one holder instead of tripping the engine's breaker.  The rest of
    the engine keeps answering — the disk holding one shard died, not
    the server.
    """

    db: str
    after_calls: int = 0
    duration_calls: Optional[int] = None
    table: Optional[str] = None

    def down_at(self, call_index: int) -> bool:
        """Whether the ``call_index``-th (1-based) call hits the outage."""
        if call_index <= self.after_calls:
            return False
        if self.duration_calls is None:
            return True
        return call_index <= self.after_calls + self.duration_calls


@dataclass(frozen=True)
class ScriptedFault:
    """Fail exactly the Nth matching guarded call (one-shot, 1-based).

    The regression-test primitive: *kill the Nth DDL statement* is
    ``ScriptedFault(op="ddl", nth=N)``.  ``db=None`` matches any DBMS.
    """

    op: str = "*"
    nth: int = 1
    db: Optional[str] = None

    def matches(self, db: str, op: str) -> bool:
        return (self.db is None or self.db == db) and (
            self.op == "*" or self.op == op
        )


@dataclass(frozen=True)
class SchemaDrift:
    """Mutate one remote engine's live schema, once, mid-schedule.

    The schema-drift fault kind: after ``after_calls`` guarded calls
    have reached ``db``, the next guarded call first applies the
    mutation (see :func:`repro.drift.mutate.apply_drift`) — modelling
    an autonomous DBA's DDL landing *between* the federation's calls.
    The federation is not told; it finds out through fingerprint
    verification or a schema-shaped delegation failure.

    ``kind`` is one of ``add_column`` / ``drop_column`` /
    ``rename_column`` / ``retype_column`` / ``drop_table``;
    ``new_type`` is a JSON-able ``("NAME", *args)`` spec (e.g.
    ``("VARCHAR", 8)``).  ``after_calls=0`` applies before the very
    first call.  Tests and benchmarks can also apply a drift directly
    via ``apply_drift(deployment.database(db), drift)`` without any
    injector.
    """

    db: str
    table: str
    kind: str
    after_calls: int = 0
    column: Optional[str] = None
    new_name: Optional[str] = None
    new_type: Optional[Tuple] = None


@dataclass(frozen=True)
class FaultPolicy:
    """Everything the injector needs, as data.

    ``transient_error_rate`` is the per-guarded-call probability of an
    injected :class:`TransientConnectorError`; ``error_rate_by_db``
    overrides it per DBMS.  All draws come from ``random.Random(seed)``
    in call order, so a policy replays deterministically.
    """

    seed: int = 0
    transient_error_rate: float = 0.0
    error_rate_by_db: Mapping[str, float] = field(default_factory=dict)
    outages: Tuple[EngineOutage, ...] = ()
    link_faults: Tuple[LinkFault, ...] = ()
    scripted: Tuple[ScriptedFault, ...] = ()
    drifts: Tuple[SchemaDrift, ...] = ()

    def rate_for(self, db: str) -> float:
        return float(self.error_rate_by_db.get(db, self.transient_error_rate))
