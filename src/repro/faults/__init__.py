"""Deterministic, seeded fault injection for the federation.

XDB is a middleware over *autonomous* DBMSes (DESIGN.md §1): engines
restart, links flap, and a delegation can die halfway through its DDL
cascade.  This package provides the reproducible adversary used by the
resilience tests and ``benchmarks/bench_fault_injection.py``:

* :class:`FaultPolicy` — a declarative description of the faults to
  inject: a seeded transient-error rate (global or per DBMS), engine
  outage windows, slow or partitioned links, scripted one-shot faults
  ("kill the Nth DDL statement"), and one-shot :class:`SchemaDrift`
  mutations ("rename that column after N calls") applied through
  :mod:`repro.drift.mutate`;
* :class:`FaultInjector` — the harness that installs a policy onto a
  :class:`~repro.federation.deployment.Deployment`, hooking every
  :class:`~repro.connect.connector.DBMSConnector` guarded call and the
  network's links.  All randomness flows from ``policy.seed`` through
  one ``random.Random``, so a fault schedule replays identically.

The connector layer reacts with retry + jittered exponential backoff
(see ``repro.connect.connector.RetryPolicy``); the delegation engine
reacts with deploy-or-rollback; the annotator reacts by constraining
the placement candidate set to reachable engines.  On top of those,
:mod:`repro.health` gives the federation *memory*: circuit breakers
trip on failure streaks (open breakers fail fast without consuming
the fault schedule), and the client's plan-repair loop re-plans
queries around engines the registry knows to be down — the scripted
outage/recovery schedules here double as the end-to-end adversary for
that self-healing layer (``tests/test_self_healing.py``).
"""

from repro.faults.injector import FaultInjector
from repro.faults.policy import (
    EngineOutage,
    FaultPolicy,
    LinkFault,
    SchemaDrift,
    ScriptedFault,
)

__all__ = [
    "EngineOutage",
    "FaultInjector",
    "FaultPolicy",
    "LinkFault",
    "SchemaDrift",
    "ScriptedFault",
]
