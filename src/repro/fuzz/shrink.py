"""Greedy spec shrinking: minimize a failing case before saving it.

Shrinking works on the JSON spec, not the AST: each candidate move
produces a strictly smaller spec (measured by its JSON encoding), and
a move is kept only if the shrunk case still fails.  Strict-decrease
plus a bounded move set guarantees termination.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List


def _size(spec: Dict[str, object]) -> int:
    return len(json.dumps(spec, sort_keys=True, ensure_ascii=False))


def _simpler_strings(value: str) -> List[str]:
    """Candidate replacements for a string, simplest first."""
    candidates = []
    if value != "t":
        candidates.append("t")
    if len(value) > 1:
        candidates.append(value[: len(value) // 2])
        candidates.append(value[len(value) // 2:])
    return candidates


def _candidates(spec: Dict[str, object]) -> Iterator[Dict[str, object]]:
    """Strictly-smaller variants of ``spec``, most aggressive first."""
    for key in ("name", "server", "remote_object", "table", "source"):
        value = spec.get(key)
        if isinstance(value, str):
            for simpler in _simpler_strings(value):
                yield {**spec, key: simpler}
    columns = spec.get("columns")
    if isinstance(columns, list) and columns:
        if len(columns) > 1:
            for index in range(len(columns)):
                kept = columns[:index] + columns[index + 1 :]
                out = {**spec, "columns": kept}
                if spec.get("kind") == "insert" and spec.get("values"):
                    out["values"] = [
                        row[:index] + row[index + 1 :]
                        for row in spec["values"]
                    ]
                yield out
        # Statement columns are [name, type] pairs; INSERT columns are
        # bare names.
        for index, column in enumerate(columns):
            if isinstance(column, list):
                for simpler in _simpler_strings(column[0]):
                    kept = list(columns)
                    kept[index] = [simpler, column[1]]
                    yield {**spec, "columns": kept}
                if column[1] != ["INTEGER"]:
                    kept = list(columns)
                    kept[index] = [column[0], ["INTEGER"]]
                    yield {**spec, "columns": kept}
            elif isinstance(column, str):
                for simpler in _simpler_strings(column):
                    kept = list(columns)
                    kept[index] = simpler
                    yield {**spec, "columns": kept}
    values = spec.get("values")
    if isinstance(values, list):
        if len(values) > 1:
            for index in range(len(values)):
                yield {
                    **spec,
                    "values": values[:index] + values[index + 1 :],
                }
        for row_index, row in enumerate(values):
            for col_index, value in enumerate(row):
                for simpler in _simpler_values(value):
                    rows = [list(r) for r in values]
                    rows[row_index][col_index] = simpler
                    yield {**spec, "values": rows}
    if spec.get("kind") == "query":
        for key, neutral in (
            ("where", None),
            ("join", False),
            ("distinct", False),
            ("order", False),
            ("limit", None),
        ):
            if spec.get(key) not in (neutral, None, False):
                yield {**spec, key: neutral}
        select = spec.get("select")
        if isinstance(select, list) and len(select) > 1:
            yield {**spec, "select": select[:1]}
        where = spec.get("where")
        if isinstance(where, list) and isinstance(where[2], str):
            for simpler in _simpler_strings(where[2]):
                yield {**spec, "where": [where[0], where[1], simpler]}
    if spec.get("kind") == "pushdown":
        if spec.get("where_value") is not None:
            yield {**spec, "where_value": None}
        if spec.get("project_all"):
            yield {**spec, "project_all": False}
    if spec.get("kind") == "partition":
        if spec.get("co_partition"):
            yield {**spec, "co_partition": False}
        if spec.get("scheme") != "hash":
            yield {**spec, "scheme": "hash", "bounds": []}
        if int(spec.get("partitions", 2)) > 2:
            count = int(spec["partitions"]) - 1
            bounds = spec.get("bounds") or []
            yield {
                **spec,
                "partitions": count,
                "bounds": bounds[: count - 1],
            }
        inner = spec.get("query")
        if isinstance(inner, dict):
            for shrunk in _candidates(inner):
                yield {**spec, "query": shrunk}


def _simpler_values(value) -> List[object]:
    if isinstance(value, str):
        return _simpler_strings(value)
    if isinstance(value, bool) or value is None:
        return []
    if isinstance(value, (int, float)) and value != 0:
        return [0]
    return []


def shrink_case(
    spec: Dict[str, object], still_fails, max_steps: int = 400
) -> Dict[str, object]:
    """Greedily minimize ``spec`` while ``still_fails(spec)`` holds."""
    current = spec
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(current):
            steps += 1
            if steps >= max_steps:
                break
            if _size(candidate) >= _size(current):
                continue
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current
