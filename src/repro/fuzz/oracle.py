"""Fuzz oracles: round-trip, differential execution, pushdown,
drift-recovery, partition, feedback, and partial-result parity.

Seven invariants, each cheap to state and brutal to uphold:

1. **Round-trip**: for every dialect, ``render(stmt)`` must parse back
   to the same AST (modulo the recorded surface ``syntax``) and a
   second render must reproduce the first text byte-for-byte.  The one
   sanctioned exception: MariaDB's FEDERATED ``CONNECTION`` string
   cannot represent ``/`` in a remote object name, and the renderer
   must *say so* (raise ``SQLError``) rather than emit a string that
   parses back wrong.
2. **Differential execution**: a query returns the same multiset of
   rows on the row engine (the oracle) and the batch engine, for every
   vendor profile.
3. **Pushdown parity**: a query over a foreign table on a two-engine
   deployment returns the same rows as running it directly on the
   remote engine, whatever the wrapper's pushdown capabilities.
4. **Drift-recovery parity**: after a live schema mutation lands on
   the remote engine behind the federation's back, an XDB client with
   the stale catalog must still answer — and must return exactly the
   rows a fresh client (introspecting the drifted engine from scratch)
   returns for the same query.
5. **Partition parity**: splitting a table into hash/range shards
   across a four-engine federation (workers pulling the gathered
   branches in parallel) must not change any query's result — the
   partitioned deployment returns exactly the unpartitioned
   deployment's rows.
6. **Feedback parity**: the Q-Error loop only changes *how* a query
   runs, never *what* it returns — a client with skewed statistics,
   a warmed :class:`~repro.feedback.store.FeedbackStore`, and
   (optionally) mid-query adaptivity must return byte-identical rows
   to a feedback-free oracle client, on both the cold and the warmed
   submission.
7. **Partial-result parity**: when a shard dies with no replica and
   the policy allows partial answers, the degraded result is a
   row-multiset *subset* of the fault-free oracle, and the reported
   completeness is exactly the row-weighted fraction implied by the
   reported missing partitions (never below the policy floor).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.core.client import XDB
from repro.drift.mutate import apply_drift
from repro.engine.database import Database
from repro.faults.policy import SchemaDrift
from repro.federation.deployment import Deployment
from repro.fuzz.generators import query_statement, spec_to_statement
from repro.relational.schema import Field, Schema
from repro.sql import ast
from repro.sql.dialects import available_dialects, dialect_for
from repro.sql.parser import parse_statement
from repro.sql.types import DOUBLE, INTEGER, varchar
from repro.errors import SQLError

DIALECTS = tuple(available_dialects())
PROFILES = ("postgres", "mariadb", "hive")

#: Values the fuzz schema's VARCHAR column cycles through — includes
#: the string-pool edges so WHERE predicates on them can match rows.
_B_VALUES = ["plain", "it's", "", "a''b", "sla/sh", "ünïcode-значение"]


def _normalize(stmt: ast.Statement, dialect: str = "") -> ast.Statement:
    """Erase surface markers the dialect is allowed to lose.

    ``syntax`` on a foreign-table DDL records which surface parsed it;
    MariaDB additionally drops federated tables with plain ``DROP
    TABLE`` (the catalog sanctions that narrowing), so its DROP
    round-trip may collapse FOREIGN TABLE to TABLE.
    """
    if isinstance(stmt, ast.CreateForeignTable):
        return replace(stmt, syntax="postgres")
    if (
        dialect == "mariadb"
        and isinstance(stmt, ast.DropObject)
        and stmt.kind == "FOREIGN TABLE"
    ):
        return replace(stmt, kind="TABLE")
    return stmt


def expected_unrepresentable(stmt: ast.Statement, dialect: str) -> bool:
    """True when ``dialect`` is *allowed* to refuse to render ``stmt``."""
    return (
        dialect == "mariadb"
        and isinstance(stmt, ast.CreateForeignTable)
        and "/" in stmt.remote_object
    )


def check_roundtrip(stmt: ast.Statement) -> List[str]:
    """Render → parse → render through every dialect."""
    failures: List[str] = []
    for name in DIALECTS:
        renderer = dialect_for(name)
        try:
            text = renderer.render(stmt)
        except SQLError as exc:
            if expected_unrepresentable(stmt, name):
                continue
            failures.append(f"{name}: render raised SQLError: {exc}")
            continue
        except Exception as exc:  # crash = finding
            failures.append(f"{name}: render crashed: {exc!r}")
            continue
        if expected_unrepresentable(stmt, name):
            failures.append(
                f"{name}: rendered an unrepresentable statement "
                f"instead of refusing: {text!r}"
            )
            continue
        try:
            parsed = parse_statement(text)
        except Exception as exc:
            failures.append(
                f"{name}: rendered SQL does not parse back: {exc!r} "
                f"for {text!r}"
            )
            continue
        if _normalize(parsed, name) != _normalize(stmt, name):
            failures.append(
                f"{name}: AST changed across round-trip for {text!r}: "
                f"parsed {parsed!r}"
            )
            continue
        second = renderer.render(parsed)
        if second != text:
            failures.append(
                f"{name}: render not idempotent: {text!r} -> {second!r}"
            )
    return failures


# -- differential query execution ------------------------------------------


def _fuzz_database(name: str, profile: str, mode: str) -> Database:
    db = Database(name, profile=profile, execution_mode=mode)
    t1 = [
        (i % 70, _B_VALUES[i % len(_B_VALUES)], (i * 7 % 100) / 2.0)
        for i in range(60)
    ]
    t2 = [(i * 3 % 70, f"d{i}") for i in range(20)]
    db.create_table(
        "t1",
        Schema(
            [
                Field("a", INTEGER),
                Field("b", varchar(25)),
                Field("c", DOUBLE),
            ]
        ),
        t1,
    )
    db.create_table(
        "t2",
        Schema([Field("a", INTEGER), Field("d", varchar(8))]),
        t2,
    )
    return db


def _canonical(rows) -> List[str]:
    return sorted(repr(tuple(row)) for row in rows)


def check_query_differential(spec: Dict[str, object]) -> List[str]:
    """Row engine (oracle) vs batch engine, across all vendor profiles."""
    select = query_statement(spec)
    failures: List[str] = []
    # LIMIT without ORDER BY legitimately leaves *which* rows
    # implementation-defined; compare cardinalities only.
    compare_rows = not (spec.get("limit") is not None and not spec.get("order"))
    reference = None
    for profile in PROFILES:
        sql = dialect_for(profile).render(select)
        results = {}
        for mode in ("row", "batch"):
            db = _fuzz_database(f"fz_{profile}_{mode}", profile, mode)
            try:
                results[mode] = db.execute(sql).rows
            except Exception as exc:
                failures.append(
                    f"{profile}/{mode}: execution failed: {exc!r} "
                    f"for {sql!r}"
                )
        if len(results) < 2:
            continue
        row_c, batch_c = (
            _canonical(results["row"]),
            _canonical(results["batch"]),
        )
        if compare_rows and row_c != batch_c:
            failures.append(
                f"{profile}: row vs batch mismatch "
                f"({len(row_c)} vs {len(batch_c)} rows) for {sql!r}"
            )
        if len(row_c) != len(batch_c):
            failures.append(
                f"{profile}: row vs batch cardinality mismatch "
                f"({len(row_c)} vs {len(batch_c)}) for {sql!r}"
            )
        if compare_rows:
            if reference is None:
                reference = (profile, row_c)
            elif reference[1] != row_c:
                failures.append(
                    f"{profile}: differs from {reference[0]} on the "
                    f"same data for {sql!r}"
                )
    return failures


# -- foreign-table pushdown parity -----------------------------------------


def check_pushdown(spec: Dict[str, object]) -> List[str]:
    """Delegated foreign-table query vs direct remote execution."""
    failures: List[str] = []
    deployment = Deployment(
        {"L": "postgres", "R": spec["remote_profile"]}
    )
    local, remote = (
        deployment.databases["L"],
        deployment.databases["R"],
    )
    rt = [(i % 70, (i * 3 % 50) / 2.0) for i in range(120)]
    remote.create_table(
        "rt",
        Schema([Field("a", INTEGER), Field("c", DOUBLE)]),
        rt,
    )
    ddl = ast.CreateForeignTable(
        name="ft",
        columns=(
            ast.ColumnDef("a", INTEGER),
            ast.ColumnDef("c", DOUBLE),
        ),
        server="R",
        remote_object="rt",
    )
    try:
        local.execute(local.dialect.render(ddl))
    except Exception as exc:
        return [f"foreign-table DDL failed: {exc!r}"]
    projection = "a, c" if spec.get("project_all") else "a"
    where = ""
    if spec.get("where_value") is not None:
        where = f" WHERE a > {spec['where_value']}"
    try:
        delegated = local.execute(
            f"SELECT {projection} FROM ft{where}"
        ).rows
        direct = remote.execute(
            f"SELECT {projection} FROM rt{where}"
        ).rows
    except Exception as exc:
        return [
            f"pushdown execution failed on "
            f"{spec['remote_profile']}: {exc!r}"
        ]
    if _canonical(delegated) != _canonical(direct):
        failures.append(
            f"pushdown mismatch vs {spec['remote_profile']}: "
            f"{len(delegated)} delegated rows vs {len(direct)} direct "
            f"(projection={projection!r}, where={where!r})"
        )
    return failures


# -- schema-drift recovery parity -------------------------------------------


def _drift_deployment(profile: str) -> Deployment:
    """Two engines, one cross-database join's worth of data."""
    deployment = Deployment({"L": "postgres", "R": profile})
    deployment.load_table(
        "L",
        "lt",
        Schema([Field("a", INTEGER), Field("b", varchar(8))]),
        [(i % 40, f"v{i % 9}") for i in range(80)],
    )
    deployment.load_table(
        "R",
        "rt",
        Schema([Field("a", INTEGER), Field("c", DOUBLE)]),
        [(i % 70, (i * 3 % 50) / 2.0) for i in range(120)],
    )
    return deployment


def check_drift(spec: Dict[str, object]) -> List[str]:
    """Stale-catalog recovery vs a fresh client over the drifted engine.

    The spec carries a cross-database ``query`` and a ``drift`` (the
    :class:`~repro.faults.policy.SchemaDrift` fields, minus ``db`` /
    ``table`` which are fixed to the remote ``rt``).  A warmed XDB
    client submits the query, the drift lands directly on the remote
    engine, and the same client submits again: it must absorb the
    drift inside its repair budget and match the oracle — a brand-new
    client introspecting the already-drifted deployment.
    """
    drift_fields = dict(spec["drift"])
    new_type = drift_fields.get("new_type")
    drift = SchemaDrift(
        db="R",
        table=str(drift_fields.get("table", "rt")),
        kind=str(drift_fields["kind"]),
        column=drift_fields.get("column"),
        new_name=drift_fields.get("new_name"),
        new_type=tuple(new_type) if new_type is not None else None,
    )
    sql = str(spec["query"])

    stale_deployment = _drift_deployment(spec["remote_profile"])
    xdb = XDB(stale_deployment)
    try:
        xdb.submit(sql)
    except Exception as exc:
        return [f"pre-drift baseline failed: {exc!r} for {sql!r}"]
    try:
        apply_drift(stale_deployment.database("R"), drift)
    except Exception as exc:
        return [f"drift did not apply: {exc!r} for {drift!r}"]
    try:
        recovered = xdb.submit(sql).result.rows
    except Exception as exc:
        return [
            f"stale-catalog submission did not recover from "
            f"{drift.kind}: {exc!r} for {sql!r}"
        ]

    oracle_deployment = _drift_deployment(spec["remote_profile"])
    apply_drift(oracle_deployment.database("R"), drift)
    try:
        direct = XDB(oracle_deployment).submit(sql).result.rows
    except Exception as exc:
        return [f"drift oracle execution failed: {exc!r} for {sql!r}"]
    if _canonical(recovered) != _canonical(direct):
        return [
            f"drift recovery mismatch after {drift.kind}: "
            f"{len(recovered)} recovered rows vs {len(direct)} oracle "
            f"rows for {sql!r}"
        ]
    return []


# -- partition parity --------------------------------------------------------


def _parity_deployment(
    spec: Dict[str, object], partitioned: bool
) -> Deployment:
    """Four engines with the fuzz tables; optionally shard them."""
    deployment = Deployment(
        {f"p{i}": "postgres" for i in range(1, 5)},
        parallel_workers=2 if partitioned else 1,
    )
    t1 = [
        (i % 70, _B_VALUES[i % len(_B_VALUES)], (i * 7 % 100) / 2.0)
        for i in range(60)
    ]
    t2 = [(i * 3 % 70, f"d{i}") for i in range(20)]
    deployment.load_table(
        "p1",
        "t1",
        Schema(
            [
                Field("a", INTEGER),
                Field("b", varchar(25)),
                Field("c", DOUBLE),
            ]
        ),
        t1,
    )
    deployment.load_table(
        "p2",
        "t2",
        Schema([Field("a", INTEGER), Field("d", varchar(8))]),
        t2,
    )
    if partitioned:
        count = int(spec["partitions"])
        by_db = [f"p{index % 4 + 1}" for index in range(count)]
        scheme = str(spec["scheme"])
        bounds = tuple(spec.get("bounds") or ())
        deployment.partition_table(
            "t1", "a", by_db, scheme=scheme, bounds=bounds
        )
        if spec.get("co_partition"):
            deployment.partition_table(
                "t2", "a", by_db, scheme=scheme, bounds=bounds
            )
    return deployment


def check_partition(spec: Dict[str, object]) -> List[str]:
    """Partitioned vs unpartitioned execution of the same query."""
    qspec = dict(spec["query"])
    select = query_statement(qspec)
    sql = dialect_for("postgres").render(select)
    # LIMIT without ORDER BY leaves *which* rows implementation-defined
    # (and partitioning legitimately changes arrival order).
    compare_rows = not (
        qspec.get("limit") is not None and not qspec.get("order")
    )
    try:
        plain = XDB(_parity_deployment(spec, False)).submit(sql)
    except Exception as exc:
        return [f"unpartitioned baseline failed: {exc!r} for {sql!r}"]
    try:
        sharded = XDB(_parity_deployment(spec, True)).submit(sql)
    except Exception as exc:
        return [
            f"partitioned execution failed "
            f"({spec['scheme']}/{spec['partitions']}): {exc!r} "
            f"for {sql!r}"
        ]
    plain_c = _canonical(plain.result.rows)
    sharded_c = _canonical(sharded.result.rows)
    if len(plain_c) != len(sharded_c):
        return [
            f"partition parity cardinality mismatch "
            f"({spec['scheme']}/{spec['partitions']}): {len(plain_c)} "
            f"unpartitioned vs {len(sharded_c)} rows for {sql!r}"
        ]
    if compare_rows and plain_c != sharded_c:
        return [
            f"partition parity mismatch "
            f"({spec['scheme']}/{spec['partitions']}, "
            f"co_partition={spec.get('co_partition')}): rows differ "
            f"for {sql!r}"
        ]
    return []


# -- partial-result parity ---------------------------------------------------


def check_partial(spec: Dict[str, object]) -> List[str]:
    """Policy-bounded partial answers vs the fault-free oracle.

    One shard of the partitioned fuzz deployment dies (shard-scoped
    outage, no replica); an ``allow_partial`` submission must then:

    * return a row-*multiset subset* of the fault-free oracle's rows —
      a partial answer may drop rows, never invent or duplicate them;
    * report ``completeness`` in ``(0, 1]`` that is exactly the
      row-weighted surviving fraction implied by its own
      ``missing_partitions`` (and no lower than the policy's floor);
    * quarantine only the struck holder — the engine-level breaker
      stays closed.

    Specs must not use LIMIT (it changes *which* rows survive, so the
    subset comparison would be vacuous).
    """
    from collections import Counter

    from repro.core.partition import partition_completeness, partition_name
    from repro.faults import EngineOutage, FaultInjector, FaultPolicy
    from repro.qos import QoSPolicy

    qspec = dict(spec["query"])
    if qspec.get("limit") is not None:
        return ["partial specs must not carry LIMIT"]
    select = query_statement(qspec)
    sql = dialect_for("postgres").render(select)
    count = int(spec["partitions"])
    by_db = [f"p{index % 4 + 1}" for index in range(count)]
    dead = int(spec["dead_shard"]) % count
    shard = partition_name("t1", dead)
    holder = by_db[dead]
    floor = float(spec.get("completeness_floor", 0.0))

    try:
        oracle = XDB(_parity_deployment(spec, True)).submit(sql)
    except Exception as exc:
        return [f"partial oracle baseline failed: {exc!r} for {sql!r}"]

    deployment = _parity_deployment(spec, True)
    xdb = XDB(deployment)
    try:
        xdb.warm_metadata()
        with FaultInjector(
            FaultPolicy(outages=(EngineOutage(db=holder, table=shard),))
        ).install(deployment):
            report = xdb.submit(
                sql,
                qos=QoSPolicy(
                    allow_partial=True, completeness_floor=floor
                ),
            )
    except Exception as exc:
        return [
            f"partial submission failed ({holder}/{shard}): {exc!r} "
            f"for {sql!r}"
        ]

    failures: List[str] = []
    recovery = report.recovery
    got = Counter(_canonical(report.result.rows))
    want = Counter(_canonical(oracle.result.rows))
    extra = got - want
    if extra:
        failures.append(
            f"partial answer is not a subset of the fault-free oracle: "
            f"{sum(extra.values())} extra rows for {sql!r}"
        )
    if not recovery.partial:
        failures.append(
            f"partial degrade never engaged under a dead shard "
            f"({holder}/{shard}) for {sql!r}"
        )
        return failures
    if not recovery.missing_partitions:
        failures.append(
            f"partial answer reports no missing partitions for {sql!r}"
        )
    if not (0.0 < recovery.completeness <= 1.0):
        failures.append(
            f"completeness {recovery.completeness} outside (0, 1] "
            f"for {sql!r}"
        )
    if recovery.completeness < floor:
        failures.append(
            f"completeness {recovery.completeness} below the policy "
            f"floor {floor} for {sql!r}"
        )
    implied = partition_completeness(
        recovery.missing_partitions,
        xdb.catalog.partition_spec,
        xdb.pipeline._shard_rows,
    )
    if abs(recovery.completeness - implied) > 1e-9:
        failures.append(
            f"completeness {recovery.completeness} inconsistent with "
            f"missing partitions {recovery.missing_partitions} "
            f"(implied {implied}) for {sql!r}"
        )
    if not xdb.catalog.is_quarantined(holder, shard):
        failures.append(
            f"struck holder {holder}/{shard} was not quarantined "
            f"for {sql!r}"
        )
    if deployment.health.is_open(holder):
        failures.append(
            f"shard-scoped fault tripped the engine breaker on "
            f"{holder!r} for {sql!r}"
        )
    return failures


# -- feedback parity ---------------------------------------------------------


def check_feedback(spec: Dict[str, object]) -> List[str]:
    """Warmed feedback store vs a feedback-free oracle client.

    The spec carries a cross-database ``query`` over the two-engine
    drift deployment, a ``skew`` that misleads the warmed client's
    statistics (``override_stats`` on the remote table), and the
    optional ``movement_policy`` / ``adaptivity_threshold`` knobs that
    arm mid-query adaptation.  Whatever plans the Q-Error loop picks —
    cold under skewed stats, adapted mid-query, or replanned off the
    warmed store — every submission must return exactly the oracle's
    rows.
    """
    from repro.feedback.store import FeedbackStore

    sql = str(spec["query"])
    profile = str(spec.get("remote_profile", "postgres"))
    movement = str(spec.get("movement_policy", "cost"))
    threshold = spec.get("adaptivity_threshold")
    skew = dict(spec.get("skew") or {})

    try:
        oracle = XDB(
            _drift_deployment(profile), movement_policy=movement
        ).submit(sql)
    except Exception as exc:
        return [f"feedback oracle baseline failed: {exc!r} for {sql!r}"]
    expected = _canonical(oracle.result.rows)

    deployment = _drift_deployment(profile)
    xdb = XDB(
        deployment,
        movement_policy=movement,
        feedback=FeedbackStore(),
        adaptivity_threshold=(
            float(threshold) if threshold is not None else None
        ),
    )
    try:
        xdb.warm_metadata()
        if skew:
            xdb.catalog.override_stats(
                str(skew.get("db", "R")),
                str(skew.get("table", "rt")),
                int(skew.get("row_count", 1)),
            )
        cold = xdb.submit(sql)
    except Exception as exc:
        return [
            f"cold feedback submission failed under skew {skew}: "
            f"{exc!r} for {sql!r}"
        ]
    if _canonical(cold.result.rows) != expected:
        return [
            f"feedback parity mismatch on the cold run "
            f"(skew={skew}, adapted={cold.recovery.adaptations}): "
            f"{len(cold.result.rows)} rows vs {len(expected)} oracle "
            f"rows for {sql!r}"
        ]
    try:
        warm = xdb.submit(sql)
    except Exception as exc:
        return [
            f"warmed feedback submission failed: {exc!r} for {sql!r}"
        ]
    if _canonical(warm.result.rows) != expected:
        return [
            f"feedback parity mismatch on the warmed run "
            f"({len(xdb.feedback)} learned entries): "
            f"{len(warm.result.rows)} rows vs {len(expected)} oracle "
            f"rows for {sql!r}"
        ]
    return []


def run_case(spec: Dict[str, object]) -> List[str]:
    """Run every applicable oracle; empty list means the case passed."""
    kind = spec["kind"]
    if kind == "pushdown":
        return check_pushdown(spec)
    if kind == "drift":
        return check_drift(spec)
    if kind == "partition":
        return check_partition(spec)
    if kind == "partial":
        return check_partial(spec)
    if kind == "feedback":
        return check_feedback(spec)
    try:
        stmt = spec_to_statement(spec)
    except Exception as exc:
        return [f"spec_to_statement crashed: {exc!r}"]
    failures = check_roundtrip(stmt)
    if kind == "query":
        failures.extend(check_query_differential(spec))
    return failures
