"""Dialect-aware differential SQL fuzzer.

The delegation engine's correctness rests on the three vendor dialects
agreeing: every statement the middleware renders must parse back to the
same AST on the far side, and every query must produce the same rows
whichever executor or placement runs it.  This package attacks those
invariants with generated *capability-edge* cases:

* identifiers and string values with quotes, backticks, slashes,
  spaces, keywords, and unicode — the characters that break naive
  dialect surfaces (quoting, the MariaDB ``CONNECTION='srv/obj'``
  packing, Hive's ``STORED BY`` literal);
* the full DDL surface (foreign tables, tables, views, DROP, INSERT);
* queries executed differentially — the row engine as oracle against
  the batch engine, and delegated foreign-table plans against direct
  remote execution (wrapper pushdown limits).

Each statement case is **round-tripped** render → parse → render
through all three dialects: the parse must reproduce the AST and the
second render must reproduce the text.  Failures are shrunk to minimal
specs and saved; the regression corpus lives in ``tests/corpus/``.

Run it with ``python -m repro.fuzz``.
"""

from repro.fuzz.generators import generate_case, spec_to_statement
from repro.fuzz.oracle import run_case
from repro.fuzz.runner import run_fuzz
from repro.fuzz.shrink import shrink_case

__all__ = [
    "generate_case",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "spec_to_statement",
]
