"""The fuzz campaign driver: corpus replay + seeded generation + shrink."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fuzz.corpus import replay_corpus, save_case
from repro.fuzz.generators import generate_case
from repro.fuzz.oracle import run_case
from repro.fuzz.shrink import shrink_case


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int
    cases: int
    #: generated cases whose oracles failed: (index, shrunk spec, failures)
    failures: List[Tuple[int, Dict[str, object], List[str]]] = field(
        default_factory=list
    )
    #: corpus entries that regressed: (filename, failures)
    regressions: List[Tuple[str, List[str]]] = field(default_factory=list)
    kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.regressions


def run_fuzz(
    seed: int,
    cases: int,
    corpus_dir: Optional[str] = None,
    artifacts_dir: Optional[str] = None,
    progress=None,
) -> FuzzReport:
    """Replay the corpus, then fuzz ``cases`` fresh specs.

    Every statement case is exercised through all ``len(DIALECTS)``
    dialects by the round-trip oracle, so ``cases=500`` means 500
    seeded cases *per dialect*.  Failures are shrunk to minimal specs
    and, when ``artifacts_dir`` is given, saved there for triage.
    """
    report = FuzzReport(seed=seed, cases=cases)
    if corpus_dir:
        report.regressions = replay_corpus(corpus_dir)
    for index in range(cases):
        # One independent deterministic stream per case: shrinking or
        # re-running case i never perturbs case i+1.
        rng = random.Random(seed * 1_000_003 + index)
        spec = generate_case(rng)
        kind = str(spec["kind"])
        report.kinds[kind] = report.kinds.get(kind, 0) + 1
        failures = run_case(spec)
        if failures:
            shrunk = shrink_case(spec, lambda s: bool(run_case(s)))
            shrunk_failures = run_case(shrunk)
            report.failures.append((index, shrunk, shrunk_failures))
            if artifacts_dir:
                save_case(
                    artifacts_dir,
                    f"case-{seed}-{index}",
                    "; ".join(shrunk_failures),
                    shrunk,
                )
        if progress and (index + 1) % 100 == 0:
            progress(index + 1, cases)
    return report
