"""The regression corpus: minimized fuzz findings, replayed forever.

Each corpus file in ``tests/corpus/`` is one JSON document::

    {
        "name": "slash-in-server-name",
        "description": "why this case once failed",
        "spec": { ...case spec... }
    }

Replaying a corpus entry runs the full oracle set on its spec and
expects a clean pass: every file encodes a bug that has been fixed,
so a replay failure means a regression.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.fuzz.oracle import run_case


def save_case(
    directory: str,
    name: str,
    description: str,
    spec: Dict[str, object],
) -> str:
    """Write one corpus/artifact entry; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"name": name, "description": description, "spec": spec},
            handle,
            indent=2,
            ensure_ascii=False,
            sort_keys=True,
        )
        handle.write("\n")
    return path


def load_corpus(directory: str) -> List[Tuple[str, Dict[str, object]]]:
    """All ``(filename, entry)`` pairs in ``directory``, sorted."""
    if not os.path.isdir(directory):
        return []
    entries = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            entries.append((filename, json.load(handle)))
    return entries


def replay_corpus(directory: str) -> List[Tuple[str, List[str]]]:
    """Run every corpus entry; returns ``(filename, failures)`` pairs
    for entries that no longer pass."""
    regressions = []
    for filename, entry in load_corpus(directory):
        failures = run_case(entry["spec"])
        if failures:
            regressions.append((filename, failures))
    return regressions
