"""Fuzz-case generation: JSON-able specs plus spec → AST conversion.

A *case spec* is a plain dict (JSON-serializable so failures can be
saved, shrunk, and replayed from ``tests/corpus/``).  ``kind`` selects
the oracle:

* ``foreign_table`` / ``create_table`` / ``view`` / ``drop`` /
  ``insert`` — DDL/DML statements, checked by the three-dialect
  round-trip oracle;
* ``query`` — a SELECT over the fixed fuzz schema, round-tripped *and*
  executed differentially (row engine vs batch engine, per vendor);
* ``pushdown`` — a foreign-table query on a two-engine deployment,
  compared against direct execution on the remote engine;
* ``partition`` — a query spec plus a hash/range partitioning of the
  fuzz tables across a four-engine federation, checked by the
  partition-parity oracle (partitioned and unpartitioned deployments
  must return identical rows through XDB).

Identifier and string pools concentrate on capability edges: quote
characters of all three dialects, ``/`` (the MariaDB CONNECTION
separator), spaces, reserved keywords, leading digits, and unicode.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.sql import ast
from repro.sql.types import type_from_name

#: Identifier edge cases.  Every dialect must quote its way out.
IDENT_POOL = [
    "plain",
    "with space",
    "quote'name",
    'double"quote',
    "back`tick",
    "slash/name",
    "a/b/c",
    "order",
    "select",
    "table",
    "from",
    "1starts_digit",
    "MixedCase",
    "dotted.name",
    "semi;colon",
    "dash-name",
    "per%cent",
    "ünïcode",
    "значение",
    "tab\tname",
]

#: String-literal edge cases (INSERT values, remote object names).
STRING_POOL = [
    "",
    "plain",
    "it's",
    "''",
    "a''b",
    "trailing'",
    "'leading",
    "sla/sh",
    "back\\slash",
    "per%cent",
    "two  spaces",
    "ünïcode-значение",
]

#: Column types as ``[name, *args]`` (JSON-able, via ``type_from_name``).
TYPE_POOL = [
    ["INTEGER"],
    ["BIGINT"],
    ["DOUBLE"],
    ["VARCHAR", 8],
    ["VARCHAR", 25],
    ["CHAR", 4],
    ["DATE"],
    ["BOOLEAN"],
]

_IDENT_ALPHABET = "ab'\"`/ _%;.-3ü"


def gen_identifier(rng: random.Random) -> str:
    """A nasty-but-nonempty identifier."""
    if rng.random() < 0.6:
        return rng.choice(IDENT_POOL)
    length = rng.randint(1, 8)
    return "".join(rng.choice(_IDENT_ALPHABET) for _ in range(length))


def gen_string(rng: random.Random) -> str:
    if rng.random() < 0.6:
        return rng.choice(STRING_POOL)
    length = rng.randint(0, 8)
    return "".join(rng.choice(_IDENT_ALPHABET) for _ in range(length))


def _gen_columns(rng: random.Random) -> List[list]:
    count = rng.randint(1, 4)
    columns = []
    used = set()
    for _ in range(count):
        name = gen_identifier(rng)
        # Case-insensitive catalogs: avoid duplicate column names.
        while name.lower() in used:
            name = name + "_"
        used.add(name.lower())
        columns.append([name, rng.choice(TYPE_POOL)])
    return columns


def _gen_value(rng: random.Random):
    roll = rng.random()
    if roll < 0.40:
        return gen_string(rng)
    if roll < 0.60:
        return rng.randint(0, 10_000)
    if roll < 0.75:
        return round(rng.uniform(0.0, 100.0), 3)
    if roll < 0.88:
        return None
    return rng.random() < 0.5


def generate_case(rng: random.Random) -> Dict[str, object]:
    """One random case spec."""
    roll = rng.random()
    if roll < 0.24:
        return {
            "kind": "foreign_table",
            "name": gen_identifier(rng),
            "columns": _gen_columns(rng),
            "server": gen_identifier(rng),
            "remote_object": gen_identifier(rng),
        }
    if roll < 0.34:
        return {
            "kind": "create_table",
            "name": gen_identifier(rng),
            "columns": _gen_columns(rng),
            "temporary": rng.random() < 0.3,
        }
    if roll < 0.40:
        return {
            "kind": "view",
            "name": gen_identifier(rng),
            "source": gen_identifier(rng),
            "columns": [gen_identifier(rng) for _ in range(rng.randint(1, 3))],
        }
    if roll < 0.46:
        return {
            "kind": "drop",
            "name": gen_identifier(rng),
            "objkind": rng.choice(["TABLE", "VIEW", "FOREIGN TABLE"]),
            "if_exists": rng.random() < 0.5,
        }
    if roll < 0.58:
        columns = _gen_columns(rng)
        names = [name for name, _ in columns]
        return {
            "kind": "insert",
            "table": gen_identifier(rng),
            "columns": names if rng.random() < 0.5 else [],
            "values": [
                [_gen_value(rng) for _ in names]
                for _ in range(rng.randint(1, 3))
            ],
        }
    if roll < 0.80:
        return _gen_query(rng)
    if roll < 0.93:
        return {
            "kind": "pushdown",
            "remote_profile": rng.choice(["postgres", "mariadb", "hive"]),
            "where_value": (
                rng.randint(0, 60) if rng.random() < 0.7 else None
            ),
            "project_all": rng.random() < 0.4,
        }
    return gen_partition_case(rng)


def gen_partition_case(rng: random.Random) -> Dict[str, object]:
    """A partitioned-deployment spec wrapping a random query.

    The key column ``a`` takes values in ``[0, 70)``, so range bounds
    split that domain evenly; ``co_partition`` also partitions ``t2``
    with the same spec (compatible keys — joins can zip shard-wise).
    """
    partitions = rng.randint(2, 4)
    scheme = rng.choice(["hash", "range"])
    bounds = (
        []
        if scheme == "hash"
        else [70 * i // partitions for i in range(1, partitions)]
    )
    return {
        "kind": "partition",
        "scheme": scheme,
        "partitions": partitions,
        "bounds": bounds,
        "co_partition": rng.random() < 0.5,
        "query": _gen_query(rng),
    }


def _gen_query(rng: random.Random) -> Dict[str, object]:
    join = rng.random() < 0.4
    select = rng.sample(["a", "b", "c"], rng.randint(1, 3))
    where = None
    roll = rng.random()
    if roll < 0.4:
        where = ["a", rng.choice([">", "<", "=", "<>"]), rng.randint(0, 60)]
    elif roll < 0.7:
        where = ["b", rng.choice(["=", "<>"]), gen_string(rng)]
    return {
        "kind": "query",
        "join": join,
        "select": select,
        "where": where,
        "distinct": rng.random() < 0.25,
        "order": rng.random() < 0.4,
        "limit": rng.randint(0, 40) if rng.random() < 0.3 else None,
    }


# -- spec → AST ------------------------------------------------------------


def spec_to_statement(spec: Dict[str, object]) -> ast.Statement:
    """Build the statement AST for a statement-shaped spec."""
    kind = spec["kind"]
    if kind == "foreign_table":
        return ast.CreateForeignTable(
            name=spec["name"],
            columns=_columns(spec["columns"]),
            server=spec["server"],
            remote_object=spec["remote_object"],
        )
    if kind == "create_table":
        return ast.CreateTable(
            name=spec["name"],
            columns=_columns(spec["columns"]),
            temporary=bool(spec.get("temporary", False)),
        )
    if kind == "view":
        query = ast.Select(
            items=tuple(
                ast.SelectItem(ast.ColumnRef(name))
                for name in spec["columns"]
            ),
            from_items=(ast.TableRef((spec["source"],)),),
        )
        return ast.CreateView(name=spec["name"], query=query)
    if kind == "drop":
        return ast.DropObject(
            kind=spec["objkind"],
            name=spec["name"],
            if_exists=bool(spec.get("if_exists", False)),
        )
    if kind == "insert":
        return ast.Insert(
            table=spec["table"],
            columns=tuple(spec.get("columns") or ()),
            rows=tuple(
                tuple(ast.Literal(value) for value in row)
                for row in spec["values"]
            ),
        )
    if kind == "query":
        return query_statement(spec)
    raise ValueError(f"spec kind {kind!r} is not statement-shaped")


def query_statement(spec: Dict[str, object]) -> ast.Select:
    """The SELECT AST for a ``query`` spec over the fuzz schema."""
    items = tuple(
        ast.SelectItem(ast.ColumnRef(name, "t1"))
        for name in spec["select"]
    )
    from_items: tuple = (ast.TableRef(("t1",)),)
    where = None
    if spec.get("join"):
        from_items = (ast.TableRef(("t1",)), ast.TableRef(("t2",)))
        where = ast.BinaryOp(
            "=", ast.ColumnRef("a", "t1"), ast.ColumnRef("a", "t2")
        )
    if spec.get("where"):
        column, op, value = spec["where"]
        predicate = ast.BinaryOp(
            op, ast.ColumnRef(column, "t1"), ast.Literal(value)
        )
        where = (
            predicate
            if where is None
            else ast.BinaryOp("AND", where, predicate)
        )
    order_by = ()
    if spec.get("order"):
        order_by = (ast.OrderItem(ast.ColumnRef(spec["select"][0], "t1")),)
    return ast.Select(
        items=items,
        from_items=from_items,
        where=where,
        order_by=order_by,
        limit=spec.get("limit"),
        distinct=bool(spec.get("distinct", False)),
    )


def _columns(columns) -> tuple:
    return tuple(
        ast.ColumnDef(name, type_from_name(spec[0], *spec[1:]))
        for name, spec in columns
    )
