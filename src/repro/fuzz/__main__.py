"""CLI: fuzz the SQL dialects and execution engines.

Usage::

    PYTHONPATH=src python -m repro.fuzz \\
        --seed 7 --cases 500 \\
        --corpus tests/corpus --artifacts fuzz-failures

Replays the regression corpus first, then runs ``--cases`` seeded
cases (each statement case round-trips through every dialect, so the
count is per-dialect).  Exits 1 if any case or corpus entry fails;
shrunk failing specs are written to ``--artifacts``.
"""

from __future__ import annotations

import argparse
import sys

from repro.fuzz.oracle import DIALECTS
from repro.fuzz.runner import run_fuzz


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the vendor SQL dialects "
        "and execution engines.",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--cases", type=int, default=500,
        help="seeded cases to generate (each runs per dialect)",
    )
    parser.add_argument(
        "--corpus", default=None,
        help="regression corpus directory to replay (tests/corpus)",
    )
    parser.add_argument(
        "--artifacts", default=None,
        help="directory for shrunk failing specs",
    )
    args = parser.parse_args(argv)

    def progress(done: int, total: int) -> None:
        print(f"  {done}/{total} cases", flush=True)

    report = run_fuzz(
        seed=args.seed,
        cases=args.cases,
        corpus_dir=args.corpus,
        artifacts_dir=args.artifacts,
        progress=progress,
    )
    mix = ", ".join(
        f"{kind}={count}" for kind, count in sorted(report.kinds.items())
    )
    print(
        f"fuzz: {report.cases} cases x {len(DIALECTS)} dialects "
        f"(seed {report.seed}; {mix})"
    )
    for filename, failures in report.regressions:
        print(f"CORPUS REGRESSION {filename}:")
        for failure in failures:
            print(f"  - {failure}")
    for index, spec, failures in report.failures:
        print(f"FAIL case #{index} (shrunk spec {spec!r}):")
        for failure in failures:
            print(f"  - {failure}")
    if not report.ok:
        print(
            f"FAIL: {len(report.failures)} failing cases, "
            f"{len(report.regressions)} corpus regressions"
        )
        return 1
    print("OK: zero surviving failures")
    return 0


if __name__ == "__main__":
    sys.exit(main())
