"""Self-healing federation layer: health registry + circuit breakers.

See :mod:`repro.health.registry` for the state machine and
``DESIGN.md`` §6 for how it composes with retry/backoff (connector),
replicated tables (catalog + annotator), and automatic plan repair
(client).
"""

from repro.health.registry import (
    BreakerConfig,
    BreakerEvent,
    BreakerState,
    CircuitBreaker,
    HealthRegistry,
    SimulatedClock,
)

__all__ = [
    "BreakerConfig",
    "BreakerEvent",
    "BreakerState",
    "CircuitBreaker",
    "HealthRegistry",
    "SimulatedClock",
]
