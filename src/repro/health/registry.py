"""Federation health tracking: circuit breakers over a simulated clock.

The :class:`HealthRegistry` is the federation's memory of engine
outages.  PR 1's resilience layer reacts to faults *per call* (retry,
rollback, re-plan); the registry makes the reaction *stateful*: one
:class:`CircuitBreaker` per DBMS connector absorbs outcome events from
the connector's guarded call path and gates future calls:

* **closed** — normal operation; a streak of hard failures
  (``failure_threshold`` consecutive :class:`EngineUnavailableError`
  or retry-budget exhaustions) trips the breaker open;
* **open** — every guarded call fails fast with
  :class:`~repro.errors.CircuitOpenError` *without* consuming the
  retry budget or the fault injector's schedule, and
  :meth:`DBMSConnector.is_available` reports the engine unhealthy so
  the annotator routes placement around it;
* **half-open** — after ``cooldown_seconds`` on the registry's
  simulated clock, exactly one probe is allowed through; success
  closes the breaker (the engine is re-admitted to placement), failure
  re-opens it for another cool-down.

The clock is *simulated*: it advances ``tick_seconds`` per recorded
outcome event anywhere in the federation (and can be advanced manually
by tests and benchmarks), so breaker timing is deterministic and free
of wall-clock sleeps, like the rest of the resilience machinery.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obs.runtime import current_context


class BreakerState(enum.Enum):
    """Circuit-breaker state (classic three-state machine)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for every breaker a registry creates.

    ``failure_threshold`` consecutive hard failures trip a closed
    breaker open; ``cooldown_seconds`` (simulated) must elapse before a
    half-open probe is allowed; ``tick_seconds`` is how far the
    registry's clock advances per recorded outcome event.
    """

    failure_threshold: int = 3
    cooldown_seconds: float = 8.0
    tick_seconds: float = 1.0


@dataclass(frozen=True)
class BreakerEvent:
    """One breaker state transition, stamped with simulated time."""

    db: str
    old_state: BreakerState
    new_state: BreakerState
    at_seconds: float
    reason: str = ""

    def __str__(self) -> str:
        return (
            f"{self.db}: {self.old_state} -> {self.new_state} "
            f"@{self.at_seconds:.1f}s ({self.reason})"
        )


class SimulatedClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("the simulated clock cannot run backwards")
        self._now += seconds
        return self._now


class CircuitBreaker:
    """One connector's breaker: closed → open → half-open → closed."""

    def __init__(
        self,
        db: str,
        config: BreakerConfig,
        clock: SimulatedClock,
        events: Optional[List[BreakerEvent]] = None,
    ):
        self.db = db
        self.config = config
        self._clock = clock
        self._events = events if events is not None else []
        self.state = BreakerState.CLOSED
        self.failure_streak = 0
        self.opened_at: Optional[float] = None
        #: True while a half-open probe call is in flight — the single
        #: probe slot; concurrent gate checks fast-fail until the probe
        #: records an outcome (or aborts via :meth:`probe_finished`)
        self._probe_inflight = False
        #: lifetime counters (observability)
        self.trips = 0
        self.probes = 0

    # -- gating --------------------------------------------------------

    def gate(self) -> str:
        """What the next guarded call may do: ``"closed"`` (proceed),
        ``"blocked"`` (fail fast), or ``"probe"`` (one half-open probe).

        Checking the gate while open-and-cooled transitions the breaker
        to half-open — the caller's next real call *is* the probe.
        While that probe is in flight the half-open breaker admits
        nobody else: exactly one caller consumes the probe slot,
        concurrent callers fast-fail as if the breaker were open.
        """
        if self.state is BreakerState.CLOSED:
            return "closed"
        if self.state is BreakerState.OPEN:
            elapsed = self._clock.now() - (self.opened_at or 0.0)
            if elapsed < self.config.cooldown_seconds:
                return "blocked"
            self._transition(BreakerState.HALF_OPEN, "cool-down elapsed")
        if self._probe_inflight:
            return "blocked"
        self._probe_inflight = True
        self.probes += 1
        return "probe"

    def probe_finished(self) -> None:
        """Release the probe slot without an outcome (probe aborted —
        e.g. the guarded call died on a non-engine error).

        Only meaningful while still half-open: once an outcome landed,
        the breaker has moved on (and may even be mid-way through a
        *new* probe that this late release must not clobber).
        """
        if self.state is BreakerState.HALF_OPEN:
            self._probe_inflight = False

    # -- outcome events ------------------------------------------------

    def record_success(self) -> None:
        self._probe_inflight = False
        self.failure_streak = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, "probe succeeded")

    def record_failure(self, reason: str = "hard failure") -> None:
        self._probe_inflight = False
        if self.state is BreakerState.CLOSED:
            self.failure_streak += 1
            if self.failure_streak >= self.config.failure_threshold:
                self._open(f"{reason} (threshold reached)")
        else:
            # A half-open probe failed (or a straggler call raced an
            # open breaker): back to open for another cool-down.
            self._open(reason)

    def trip(self, reason: str = "outage reported") -> None:
        """Force the breaker open (e.g. the client observed an outage)."""
        if self.state is not BreakerState.OPEN:
            self._open(reason)
        else:
            self.opened_at = self._clock.now()

    # -- internals -----------------------------------------------------

    def _open(self, reason: str) -> None:
        self.failure_streak = self.config.failure_threshold
        self.opened_at = self._clock.now()
        self.trips += 1
        self._transition(BreakerState.OPEN, reason)

    def _transition(self, new_state: BreakerState, reason: str) -> None:
        if new_state is self.state:
            return
        event = BreakerEvent(
            db=self.db,
            old_state=self.state,
            new_state=new_state,
            at_seconds=self._clock.now(),
            reason=reason,
        )
        self._events.append(event)
        self.state = new_state
        ctx = current_context()
        if ctx is not None:
            ctx.record_breaker_event(event)


class HealthRegistry:
    """One breaker per connector plus the shared simulated clock.

    Fed outcome events by :meth:`DBMSConnector._guarded`; consulted by
    the connector's gate (fail fast while open) and by
    :meth:`DBMSConnector.is_available` (placement-time health).  The
    client's plan-repair loop reports observed outages here so the
    *next* annotation round routes around the dead engine immediately.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Optional[SimulatedClock] = None,
    ):
        self.config = config or BreakerConfig()
        self.clock = clock or SimulatedClock()
        self.breakers: Dict[str, CircuitBreaker] = {}
        #: every state transition, in order (sliced by report windows)
        self.events: List[BreakerEvent] = []
        #: shard-scoped outage observations keyed ``(db, table)`` — the
        #: engine stayed healthy, one relation on it did not, so these
        #: never feed a breaker's failure streak
        self.shard_outages: Dict[tuple, int] = {}
        # Breakers are driven from concurrent client threads under the
        # overload benchmark; one reentrant lock serializes every
        # state-machine step (gate + outcome + clock tick).
        self._lock = threading.RLock()
        #: callbacks fired when a breaker closes after being non-closed
        #: (engine recovery) — e.g. the orphan reaper marks the engine
        #: pending for a reconciliation sweep
        self._recovery_listeners: List[Callable[[str], None]] = []

    def breaker(self, db: str) -> CircuitBreaker:
        with self._lock:
            breaker = self.breakers.get(db)
            if breaker is None:
                breaker = CircuitBreaker(
                    db, self.config, self.clock, self.events
                )
                self.breakers[db] = breaker
            return breaker

    # -- gating --------------------------------------------------------

    def gate(self, db: str) -> str:
        with self._lock:
            return self.breaker(db).gate()

    def allow(self, db: str) -> bool:
        """Whether a guarded call to ``db`` may proceed right now."""
        return self.gate(db) != "blocked"

    def state(self, db: str) -> BreakerState:
        return self.breaker(db).state

    def is_open(self, db: str) -> bool:
        return self.state(db) is BreakerState.OPEN

    # -- outcome events ------------------------------------------------

    def add_recovery_listener(self, listener: Callable[[str], None]) -> None:
        """Register a callback invoked with the db name whenever an
        engine's breaker closes after being open/half-open (i.e. the
        engine just recovered).  Listeners run *outside* the registry
        lock and must not raise into the guarded call path."""
        with self._lock:
            self._recovery_listeners.append(listener)

    def record_success(self, db: str) -> None:
        with self._lock:
            self.clock.advance(self.config.tick_seconds)
            breaker = self.breaker(db)
            was_recovering = breaker.state is not BreakerState.CLOSED
            breaker.record_success()
            recovered = (
                was_recovering and breaker.state is BreakerState.CLOSED
            )
            listeners = list(self._recovery_listeners) if recovered else []
        for listener in listeners:
            try:
                listener(db)
            except Exception:  # noqa: BLE001 - listeners must not break calls
                pass

    def record_failure(self, db: str, reason: str = "hard failure") -> None:
        with self._lock:
            self.clock.advance(self.config.tick_seconds)
            self.breaker(db).record_failure(reason)

    def report_outage(self, db: str, reason: str = "outage observed") -> None:
        """Force-open ``db``'s breaker (the client saw it die)."""
        with self._lock:
            self.breaker(db).trip(reason)

    def report_shard_outage(
        self, db: str, table: str, reason: str = "shard unreachable"
    ) -> None:
        """Note a *shard-scoped* outage on ``db`` without tripping it.

        The failure domain is one relation (a dead disk under a single
        partition shard), not the engine: the breaker must stay closed
        so the rest of the engine keeps serving, while placement-level
        avoidance is handled by the catalog's quarantine.  Recorded
        here purely for observability (counters; the breaker's own
        failure streak is untouched).
        """
        with self._lock:
            key = (db, table.lower())
            self.shard_outages[key] = self.shard_outages.get(key, 0) + 1

    def finish_probe(self, db: str) -> None:
        """Release ``db``'s probe slot if the probe never recorded an
        outcome (the guarded call aborted before reaching the engine)."""
        with self._lock:
            self.breaker(db).probe_finished()

    # -- observability -------------------------------------------------

    def describe(self) -> str:
        if not self.breakers and not self.shard_outages:
            return "health: no breakers"
        parts = [
            f"{name}={breaker.state}"
            for name, breaker in sorted(self.breakers.items())
        ]
        for (db, table), count in sorted(self.shard_outages.items()):
            parts.append(f"{db}.{table}=shard-outage×{count}")
        return "health: " + " ".join(parts)
