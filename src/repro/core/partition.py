"""Partitioned tables: specs, routing, and plan expansion.

A partitioned table is stored as ordinary per-partition tables named
``<table>__p<i>`` distributed across the federation; the logical name
survives only in the global catalog, which resolves it through a
:class:`PartitionSpec`.  Because partitions are real catalog tables,
everything built for whole tables — replication, drift fingerprints,
quarantine, health-aware placement — composes with them for free.

The second half of this module is the **partition expansion pass**: the
last Phase-1 rewrite, replacing each logical scan of a partitioned
table with its per-partition scans and pushing the surrounding algebra
down into the partition branches:

* unary operators (filter/project/alias) distribute over branches;
* an equi-join of two *co-partitioned* inputs (same scheme, count, and
  bounds, joined on the partition key) zips branch-wise — each shard
  joins locally, so annotation keeps every branch in-situ with zero
  cross-shard movement;
* a join against a non-partitioned input broadcasts that input into
  every branch (legal for INNER/CROSS, and for LEFT when the
  partitioned side is the left input);
* everything else (mismatched keys/counts, aggregates, sorts) gathers
  the branches under a schema-preserving ``UNION ALL`` — the
  *repartition point* where cross-shard bytes start to flow.

Rules 1–4 then see per-partition scans as ordinary scans: Rule 1 picks
the shard (or a surviving replica of it), Rule 3 keeps co-partitioned
branch joins local, and Rule 4 places the gather — so explicit edges
fan out per-partition without the annotator changing at all.
"""

from __future__ import annotations

import copy
import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.errors import CatalogError
from repro.relational import algebra
from repro.relational.builder import ResolvedTable

#: separator between a logical table name and its partition index
PARTITION_SUFFIX = "__p"

SCHEMES = ("hash", "range")

#: (relation_lower_or_None, column_lower) — a resolvable key column
KeyRef = Tuple[Optional[str], str]


def partition_name(table: str, index: int) -> str:
    """Storage name of partition ``index`` of ``table``."""
    return f"{table}{PARTITION_SUFFIX}{index}"


@dataclass(frozen=True)
class PartitionSpec:
    """How one logical table is split into partitions.

    ``bounds`` applies to range partitioning: ascending upper-exclusive
    cut points, one fewer than ``partitions`` (partition ``i`` holds
    ``bounds[i-1] <= key < bounds[i]``, with open outer intervals).
    """

    table: str
    key: str
    partitions: int
    scheme: str = "hash"
    bounds: Tuple = ()

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise CatalogError(
                f"unknown partition scheme {self.scheme!r}; "
                f"expected one of {SCHEMES}"
            )
        if self.partitions < 1:
            raise CatalogError(
                f"table {self.table!r} needs at least 1 partition"
            )
        if self.scheme == "range" and len(self.bounds) != self.partitions - 1:
            raise CatalogError(
                f"range partitioning of {self.table!r} needs "
                f"{self.partitions - 1} bound(s), got {len(self.bounds)}"
            )

    def partition_names(self) -> List[str]:
        return [
            partition_name(self.table, index)
            for index in range(self.partitions)
        ]

    def index_for(self, value: object) -> int:
        """The partition a row with this key value routes to."""
        if self.scheme == "range":
            if value is None:
                return 0
            return bisect_right(list(self.bounds), value)
        return stable_hash(value) % self.partitions

    def compatible_with(self, other: "PartitionSpec") -> bool:
        """Whether branch ``i`` of both tables covers the same key
        values — the precondition for zipping a join branch-wise."""
        return (
            self.scheme == other.scheme
            and self.partitions == other.partitions
            and tuple(self.bounds) == tuple(other.bounds)
        )


def stable_hash(value: object) -> int:
    """Deterministic, process-independent hash for partition routing.

    Python's builtin ``hash`` is randomized per process for strings, so
    routing must not depend on it — repartitioning a table in one
    session and querying it in another has to agree on placement.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value if value >= 0 else -value
    return zlib.crc32(str(value).encode("utf-8"))


# ---------------------------------------------------------------------------
# plan expansion
# ---------------------------------------------------------------------------


@dataclass
class _Branches:
    """An expanded subtree: one logical stream per partition.

    ``keys`` is the set of output columns that still carry the
    partitioning (survived projection); a join can only zip when the
    equi-condition touches a key on both sides.
    """

    branches: List[algebra.LogicalPlan]
    spec: PartitionSpec
    keys: Set[KeyRef]


class PartitionExpander:
    """Rewrites logical scans of partitioned tables into branch plans.

    ``spec_for`` maps a table name to its spec (or None); ``resolve``
    maps a partition table name to its catalog registration (schema +
    holder + replicas) — both are provided by the global catalog.
    """

    def __init__(
        self,
        spec_for: Callable[[str], Optional[PartitionSpec]],
        resolve: Callable[[str], ResolvedTable],
    ):
        self._spec_for = spec_for
        self._resolve = resolve

    def expand(self, plan: algebra.LogicalPlan) -> algebra.LogicalPlan:
        result = self._visit(plan)
        if isinstance(result, _Branches):
            return self._gather(result)
        return result

    # -- traversal -------------------------------------------------------

    def _visit(self, node: algebra.LogicalPlan):
        if isinstance(node, algebra.Scan):
            return self._expand_scan(node)
        if isinstance(node, (algebra.Filter, algebra.Project, algebra.Alias)):
            return self._push_unary(node)
        if isinstance(node, algebra.Join):
            return self._expand_join(node)
        # Aggregates, sorts, limits, distincts, and pre-existing unions
        # consume the gathered stream: collapse any expanded child.
        children = [self._collapse(self._visit(c)) for c in node.children()]
        return node.with_children(children)

    def _expand_scan(self, scan: algebra.Scan):
        if scan.placeholder:
            return scan
        spec = self._spec_for(scan.table)
        if spec is None:
            return scan
        branches: List[algebra.LogicalPlan] = []
        for index in range(spec.partitions):
            resolved = self._resolve(partition_name(spec.table, index))
            branch = algebra.Scan(
                table=resolved.table,
                binding=scan.binding,
                schema=resolved.schema,
                source_db=resolved.source_db,
                replica_dbs=resolved.replica_dbs,
                partition_of=scan.table,
                partition_index=index,
            )
            branches.append(branch)
        key: KeyRef = (scan.binding.lower(), spec.key.lower())
        return _Branches(branches, spec, {key})

    def _push_unary(self, node: algebra.LogicalPlan):
        (child,) = node.children()
        expanded = self._visit(child)
        if not isinstance(expanded, _Branches):
            return node.with_children([expanded])
        branches = [
            node.with_children([branch]) for branch in expanded.branches
        ]
        if isinstance(node, algebra.Alias):
            # Requalification moves every surviving column — and with it
            # the partition key — under the new binding.
            binding = node.binding.lower()
            keys = {
                (binding, column)
                for (_, column) in expanded.keys
                if _resolvable(branches[0].schema, binding, column)
            }
        else:
            keys = {
                key
                for key in expanded.keys
                if _resolvable(branches[0].schema, key[0], key[1])
            }
        return _Branches(branches, expanded.spec, keys)

    def _expand_join(self, node: algebra.Join):
        left = self._visit(node.left)
        right = self._visit(node.right)
        left_parts = isinstance(left, _Branches)
        right_parts = isinstance(right, _Branches)

        if left_parts and right_parts:
            if self._can_zip(node, left, right):
                return self._zip(node, left, right)
            left = self._gather(left)
            right = self._gather(right)
            return node.with_children([left, right])

        if left_parts or right_parts:
            expanded = left if left_parts else right
            other = right if left_parts else left
            if self._can_broadcast(node, partitioned_left=left_parts):
                return self._broadcast(
                    node, expanded, other, partitioned_left=left_parts
                )
            return node.with_children(
                [self._collapse(left), self._collapse(right)]
            )

        return node.with_children([left, right])

    # -- join rules ------------------------------------------------------

    def _can_zip(
        self, node: algebra.Join, left: _Branches, right: _Branches
    ) -> bool:
        """Both sides co-partitioned and joined on the partition key."""
        if node.kind not in ("INNER", "LEFT"):
            return False
        if not left.spec.compatible_with(right.spec):
            return False
        pairs = node.equi_keys()
        if not pairs:
            return False
        for left_ref, right_ref in pairs:
            if self._is_key(
                left.branches[0].schema, left.keys, left_ref
            ) and self._is_key(
                right.branches[0].schema, right.keys, right_ref
            ):
                return True
        return False

    @staticmethod
    def _is_key(schema, keys: Set[KeyRef], ref) -> bool:
        try:
            field = schema[schema.resolve(ref.name, ref.table)]
        except Exception:
            return False
        relation = field.relation.lower() if field.relation else None
        return (relation, field.name.lower()) in keys

    def _zip(
        self, node: algebra.Join, left: _Branches, right: _Branches
    ) -> _Branches:
        branches: List[algebra.LogicalPlan] = [
            algebra.Join(
                left_branch, right_branch, node.condition, node.kind
            )
            for left_branch, right_branch in zip(
                left.branches, right.branches
            )
        ]
        keys = {
            key
            for key in left.keys | right.keys
            if _resolvable(branches[0].schema, key[0], key[1])
        }
        return _Branches(branches, left.spec, keys)

    @staticmethod
    def _can_broadcast(node: algebra.Join, partitioned_left: bool) -> bool:
        """Replicating the non-partitioned input is only sound when no
        branch can emit a padded (unmatched) copy of a duplicated row:
        INNER/CROSS always qualify; LEFT only with the partitioned side
        on the left (the preserved side is never duplicated)."""
        if node.kind in ("INNER", "CROSS"):
            return True
        return node.kind == "LEFT" and partitioned_left

    def _broadcast(
        self,
        node: algebra.Join,
        expanded: _Branches,
        other: algebra.LogicalPlan,
        partitioned_left: bool,
    ) -> _Branches:
        branches: List[algebra.LogicalPlan] = []
        for index, branch in enumerate(expanded.branches):
            # Fresh nodes per branch: annotations and estimator caches
            # are id()-keyed, so shared subtrees would alias.
            copied = other if index == 0 else copy.deepcopy(other)
            pair = (
                (branch, copied) if partitioned_left else (copied, branch)
            )
            branches.append(
                algebra.Join(pair[0], pair[1], node.condition, node.kind)
            )
        keys = {
            key
            for key in expanded.keys
            if _resolvable(branches[0].schema, key[0], key[1])
        }
        return _Branches(branches, expanded.spec, keys)

    # -- gathering -------------------------------------------------------

    def _collapse(self, result) -> algebra.LogicalPlan:
        if isinstance(result, _Branches):
            return self._gather(result)
        return result

    @staticmethod
    def _gather(result: _Branches) -> algebra.LogicalPlan:
        """Left-deep UNION ALL over the branches, preserving the branch
        schema (qualifiers included) so expressions above keep
        resolving."""
        branches = result.branches
        gathered = branches[0]
        for branch in branches[1:]:
            gathered = algebra.Union(
                gathered, branch, schema=branches[0].schema
            )
        return gathered


def expand_partitions(
    plan: algebra.LogicalPlan,
    spec_for: Callable[[str], Optional[PartitionSpec]],
    resolve: Callable[[str], ResolvedTable],
) -> algebra.LogicalPlan:
    """Run the partition expansion pass over an optimized plan."""
    return PartitionExpander(spec_for, resolve).expand(plan)


def _resolvable(schema, relation: Optional[str], column: str) -> bool:
    try:
        field = schema[schema.resolve(column, relation)]
    except Exception:
        return False
    actual = field.relation.lower() if field.relation else None
    return actual == relation


# ---------------------------------------------------------------------------
# cross-shard movement accounting
# ---------------------------------------------------------------------------


def is_partition_table(name: str) -> bool:
    """Whether a storage-level table name is a partition shard."""
    head, _, tail = name.rpartition(PARTITION_SUFFIX)
    return bool(head) and tail.isdigit()


def partition_parent(name: str) -> Optional[str]:
    """The logical table a shard name belongs to (None for whole tables)."""
    head, _, tail = name.rpartition(PARTITION_SUFFIX)
    if head and tail.isdigit():
        return head
    return None


# ---------------------------------------------------------------------------
# partial results: pruning dead-shard branches
# ---------------------------------------------------------------------------


def prune_missing_shards(
    plan: algebra.LogicalPlan, missing: Sequence[str]
) -> Tuple[Optional[algebra.LogicalPlan], List[str]]:
    """Drop gather branches whose data lives only on shards in ``missing``.

    The inverse of :meth:`PartitionExpander._gather`, invoked when a
    shard has lost every healthy holder and the query's QoS policy
    allows a partial answer: each UNION ALL branch that scans a missing
    shard is removed, and the union chain collapses around the
    survivors.  A branch takes its *whole* subtree with it — in a
    co-partitioned zip the sibling shard joined locally against the
    missing one becomes unreachable too, and is reported alongside it.

    Returns ``(pruned_plan, pruned_shards)`` where ``pruned_shards``
    lists every partition-shard scan that fell out of the plan.  The
    plan comes back ``None`` when the missing shards are load-bearing
    outside any union (no partial answer is possible).
    """
    missing_lower = {name.lower() for name in missing}
    pruned: List[str] = []

    def collect(node: algebra.LogicalPlan) -> None:
        for leaf in node.leaves():
            if leaf.partition_of is not None and leaf.table not in pruned:
                pruned.append(leaf.table)

    def visit(node: algebra.LogicalPlan) -> Optional[algebra.LogicalPlan]:
        if isinstance(node, algebra.Union):
            left = visit(node.left)
            right = visit(node.right)
            if left is None and right is None:
                return None
            if left is None:
                return right
            if right is None:
                return left
            if left is node.left and right is node.right:
                return node
            return node.with_children([left, right])
        if isinstance(node, algebra.Scan):
            if node.table.lower() in missing_lower:
                collect(node)
                return None
            return node
        children = node.children()
        if not children:
            return node
        new_children = [visit(child) for child in children]
        if any(child is None for child in new_children):
            # A required (non-union) input lost its shard: this whole
            # subtree is unanswerable, so it is prunable only from an
            # enclosing union — its surviving shard scans go with it.
            for child in new_children:
                if child is not None:
                    collect(child)
            return None
        if all(new is old for new, old in zip(new_children, children)):
            return node
        return node.with_children(new_children)

    return visit(plan), pruned


def partition_completeness(
    missing: Sequence[str],
    spec_for: Callable[[str], Optional[PartitionSpec]],
    rows_for: Callable[[str], Optional[int]],
) -> float:
    """Row-weighted completeness of an answer missing these shards.

    For each affected logical table, the surviving fraction is
    ``1 - rows(missing shards) / rows(all shards)`` using catalog row
    counts via ``rows_for`` (falling back to a uniform shard-count
    fraction when stats are unavailable); the answer's completeness is
    the *minimum* across affected tables — the weakest link bounds how
    much of the join result can still be produced.
    """
    grouped: dict = {}
    for name in missing:
        parent = partition_parent(name)
        if parent is None:
            continue
        grouped.setdefault(parent.lower(), set()).add(name.lower())
    fractions: List[float] = []
    for parent, gone in grouped.items():
        spec = spec_for(parent)
        if spec is None:
            fractions.append(0.0)
            continue
        total = 0.0
        lost = 0.0
        sized = True
        for shard in spec.partition_names():
            rows = rows_for(shard)
            if rows is None:
                sized = False
                break
            total += rows
            if shard.lower() in gone:
                lost += rows
        if sized and total > 0:
            fractions.append((total - lost) / total)
        else:
            fractions.append(1.0 - len(gone) / max(spec.partitions, 1))
    return min(fractions) if fractions else 1.0


def cross_shard_bytes(dplan) -> int:
    """Bytes moved on *repartition* edges of a delegation plan.

    A repartition edge ships partition-scan output into a join on the
    consumer side — the movement partition-wise placement exists to
    avoid.  Gather edges (branch results flowing into the UNION ALL
    site) are not cross-shard movement: they carry the join's result,
    not its inputs.
    """
    total = 0
    for edge in dplan.edges:
        producer = dplan.tasks[edge.producer_id]
        if not any(
            is_partition_table(name) for name in producer.base_tables()
        ):
            continue
        consumer = dplan.tasks[edge.consumer_id]
        if _feeds_join(consumer.expr, edge.placeholder):
            total += edge.moved_bytes or 0
    return total


def _feeds_join(expr: algebra.LogicalPlan, placeholder: str) -> bool:
    if isinstance(expr, algebra.Join):
        for side in (expr.left, expr.right):
            for leaf in side.leaves():
                if leaf.placeholder and leaf.binding == placeholder:
                    return True
    return any(_feeds_join(child, placeholder) for child in expr.children())
