"""XDB's global catalog: a Global-as-View union of local schemas (§III).

The catalog is populated through the DBMS connectors during the *prep*
phase (metadata gathering counts toward the §VI-E breakdown) and serves
as the table resolver for the cross-database plan builder: every scan it
produces is tagged with the DBMS the relation lives on (Rule 1's input).

Schema-drift resilience (PR 8): the catalog is **versioned** — a
monotonic ``catalog_version`` bumps on every refresh, re-introspection,
and quarantine change, and every (db, table) carries a schema
**fingerprint** (column names/types hash + that table's stats epoch).
Verification is lazy, once per table per catalog epoch: a refresh
counts as verification for everything it read (so drift-free runs pay
zero extra engine calls), and only tables whose cached verification
predates the current version re-fetch the live schema through the
connector.  A mismatch raises :class:`SchemaDriftError` with a
field-level diff; tables the recovery path cannot reconcile are
**quarantined** — their holders leave the placement candidate set like
dead engines until the next full refresh.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.connect.connector import DBMSConnector
from repro.core.partition import PartitionSpec, partition_name
from repro.drift.fingerprint import schema_diff, schema_fingerprint
from repro.engine.cost import ScanStats
from repro.engine.stats import TableStats
from repro.errors import CatalogError, SchemaDriftError
from repro.relational.algebra import Scan
from repro.relational.builder import ResolvedTable, TableResolver
from repro.relational.schema import Schema


class GlobalCatalog(TableResolver):
    """Union of the local schemas across all federation members."""

    def __init__(
        self,
        connectors: Mapping[str, DBMSConnector],
        partition_specs: Optional[Mapping[str, PartitionSpec]] = None,
    ):
        self._connectors = dict(connectors)
        #: logical table (lowercase) -> PartitionSpec.  Held by
        #: reference, not copied: the deployment mutates its spec map
        #: when tables are (re)partitioned and the catalog must see it.
        self._partition_specs: Mapping[str, PartitionSpec] = (
            partition_specs if partition_specs is not None else {}
        )
        #: (db, table_lower) -> Schema
        self._schemas: Dict[Tuple[str, str], Schema] = {}
        #: table_lower -> list of dbs exposing it
        self._locations: Dict[str, List[str]] = {}
        #: (db, table_lower) -> TableStats
        self._stats: Dict[Tuple[str, str], Optional[TableStats]] = {}
        #: (db, table_lower) -> original table name (case preserved)
        self._names: Dict[Tuple[str, str], str] = {}
        self._loaded = False
        #: monotonic version: bumps on refresh, re-introspection, and
        #: quarantine changes — the invalidation spine for prepared
        #: plans and (future) plan caches
        self.catalog_version = 0
        #: (db, table_lower) -> schema fingerprint at registration
        self._fingerprints: Dict[Tuple[str, str], str] = {}
        #: (db, table_lower) -> stats epoch (bumped per re-registration)
        self._stats_epochs: Dict[Tuple[str, str], int] = {}
        #: (db, table_lower) -> catalog_version it was last verified at
        self._verified: Dict[Tuple[str, str], int] = {}
        #: (db, table_lower) quarantined after unreconcilable drift
        self._quarantined: Set[Tuple[str, str]] = set()

    # -- prep phase ------------------------------------------------------------

    def refresh(self, with_stats: bool = True) -> None:
        """Gather metadata from every DBMS through its connector.

        A refresh *is* a verification of everything it reads: each
        registered table's fingerprint is recomputed and marked
        verified at the new catalog version, and quarantines are
        lifted (the refresh re-read the authoritative truth).
        """
        self._schemas.clear()
        self._locations.clear()
        self._stats.clear()
        self._names.clear()
        self._verified.clear()
        self._quarantined.clear()
        self.catalog_version += 1
        for db_name, connector in self._connectors.items():
            for table_name, schema in connector.list_tables().items():
                key = table_name.lower()
                self._register(db_name, key, table_name, schema)
                if with_stats:
                    self._stats[(db_name, key)] = connector.table_stats(
                        table_name
                    )
        self._loaded = True

    def _register(
        self, db: str, key: str, table_name: str, schema: Schema
    ) -> None:
        """Record one (db, table) registration: schema, name, location,
        fingerprint at the next stats epoch, verified at this version."""
        self._schemas[(db, key)] = schema
        if db not in self._locations.setdefault(key, []):
            self._locations[key].append(db)
        self._names[(db, key)] = table_name
        epoch = self._stats_epochs.get((db, key), 0) + 1
        self._stats_epochs[(db, key)] = epoch
        self._fingerprints[(db, key)] = schema_fingerprint(schema, epoch)
        self._verified[(db, key)] = self.catalog_version

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.refresh()

    # -- fingerprints + verification --------------------------------------------

    def fingerprint_of(self, db: str, table: str) -> Optional[str]:
        self._ensure_loaded()
        return self._fingerprints.get((db, table.lower()))

    def stats_epoch_of(self, db: str, table: str) -> int:
        return self._stats_epochs.get((db, table.lower()), 0)

    def verify_table(self, db: str, table: str, force: bool = False) -> None:
        """Check the live schema of ``db.table`` against its fingerprint.

        Lazy: a table already verified at the current
        ``catalog_version`` is a cache hit (no engine call) unless
        ``force`` is set.  On mismatch raises :class:`SchemaDriftError`
        carrying the field-level diff; a quarantined table raises
        immediately without touching the engine.
        """
        self._ensure_loaded()
        key = (db, table.lower())
        if key in self._quarantined:
            raise SchemaDriftError(
                f"table {db}.{table} is quarantined after unreconcilable "
                "schema drift (refresh the catalog to re-admit it)",
                db=db,
                table=self._names.get(key, table),
                quarantined=True,
            )
        expected = self._schemas.get(key)
        if expected is None:
            return  # not a catalog table (placeholder/delegated object)
        if not force and self._verified.get(key) == self.catalog_version:
            return
        name = self._names.get(key, table)
        connector = self._connectors[db]
        live = connector.table_schema(name)
        epoch = self._stats_epochs.get(key, 0)
        expected_fp = self._fingerprints.get(key, "")
        actual_fp = (
            schema_fingerprint(live, epoch) if live is not None else ""
        )
        if live is not None and actual_fp == expected_fp:
            self._verified[key] = self.catalog_version
            return
        added, removed, retyped, dropped = schema_diff(expected, live)
        raise SchemaDriftError(
            f"schema drift on {db}.{name}: "
            + (
                "table dropped on the engine"
                if dropped
                else f"live schema diverged ({expected_fp} -> {actual_fp})"
            ),
            db=db,
            table=name,
            added=added,
            removed=removed,
            retyped=retyped,
            dropped=dropped,
            expected_fingerprint=expected_fp,
            actual_fingerprint=actual_fp,
        )

    def unverified(
        self, placement: Mapping[str, str]
    ) -> List[Tuple[str, str]]:
        """(db, table) pairs of ``placement`` needing verification now.

        Placement maps table → db (the client's plan placement view);
        only tables this catalog registered — and whose verification
        predates the current version or that are quarantined — are
        returned, so the common case is an empty list and zero calls.
        """
        self._ensure_loaded()
        out: List[Tuple[str, str]] = []
        for table, db in sorted(placement.items()):
            key = (db, table.lower())
            if key not in self._schemas and key not in self._quarantined:
                continue
            if (
                key in self._quarantined
                or self._verified.get(key) != self.catalog_version
            ):
                out.append((db, table))
        return out

    # -- drift recovery ----------------------------------------------------------

    def reintrospect(self, db: str, table: str) -> Optional[Schema]:
        """Re-fetch one table's live schema + stats and adopt them.

        The drift-recovery primitive: bumps the catalog version,
        clears the table's quarantine (the fresh truth supersedes it),
        and returns the adopted schema — or None when the engine no
        longer holds the table, in which case the registration is
        removed entirely.
        """
        self._ensure_loaded()
        key = table.lower()
        name = self._names.get((db, key), table)
        connector = self._connectors[db]
        live = connector.table_schema(name)
        self.catalog_version += 1
        self._quarantined.discard((db, key))
        if live is None:
            self._forget(db, key)
            return None
        self._register(db, key, name, live)
        self._stats[(db, key)] = connector.table_stats(name)
        return live

    def _forget(self, db: str, key: str) -> None:
        self._schemas.pop((db, key), None)
        self._stats.pop((db, key), None)
        self._names.pop((db, key), None)
        self._fingerprints.pop((db, key), None)
        self._verified.pop((db, key), None)
        holders = self._locations.get(key)
        if holders and db in holders:
            holders.remove(db)
            if not holders:
                del self._locations[key]

    # -- quarantine ---------------------------------------------------------------

    def quarantine(self, db: str, table: str) -> None:
        """Exclude ``db``'s copy of ``table`` from placement until the
        next refresh (Rule 4 treats it like a dead holder)."""
        self._ensure_loaded()
        self._quarantined.add((db, table.lower()))
        self.catalog_version += 1

    def is_quarantined(self, db: str, table: str) -> bool:
        return (db, table.lower()) in self._quarantined

    def quarantined_tables(self) -> List[Tuple[str, str]]:
        return sorted(self._quarantined)

    def _live_holders(self, key: str) -> List[str]:
        return [
            db
            for db in self._locations.get(key, [])
            if (db, key) not in self._quarantined
        ]

    # -- lookup -------------------------------------------------------------------

    def holders(self, table: str) -> List[str]:
        """Every DBMS exposing ``table``, in registration order."""
        self._ensure_loaded()
        return list(self._locations.get(table.lower(), []))

    def is_replicated(self, table: str) -> bool:
        """Whether ``table`` is held by more than one DBMS as replicas.

        Multiple holders count as replicas only when every copy has an
        identical schema; same-named tables with *different* schemas
        remain ambiguous (the user must qualify them as ``db.table``).
        Quarantined holders do not count — a drifted replica is out of
        the replica set until re-admitted.
        """
        self._ensure_loaded()
        return self._replicated(table.lower())

    def _replicated(self, key: str) -> bool:
        locations = self._live_holders(key)
        if len(locations) < 2:
            return False
        first = self._schemas[(locations[0], key)]
        return all(
            self._schemas[(db, key)] == first for db in locations[1:]
        )

    def locate(self, table: str) -> str:
        """The primary DBMS hosting an unqualified table name.

        For a replicated table this is the first registered live
        holder (the annotator may still place the scan on any healthy
        replica); same-named tables with diverging schemas stay
        ambiguous; a table whose every holder is quarantined is
        unanswerable until a refresh re-admits one.
        """
        self._ensure_loaded()
        key = table.lower()
        locations = self._live_holders(key)
        if not locations:
            if self._locations.get(key):
                raise CatalogError(
                    f"every holder of table {table!r} is quarantined "
                    "after schema drift; refresh the catalog to re-admit"
                )
            raise CatalogError(f"unknown table {table!r} in the federation")
        if len(locations) > 1 and not self._replicated(key):
            raise CatalogError(
                f"table {table!r} exists on multiple DBMSes "
                f"({', '.join(locations)}); qualify it as db.table"
            )
        return locations[0]

    def tables(self) -> List[Tuple[str, str]]:
        """All (db, table) pairs in the federation."""
        self._ensure_loaded()
        return [(db, self._names[(db, key)]) for (db, key) in self._schemas]

    def schema_of(self, db: str, table: str) -> Schema:
        self._ensure_loaded()
        schema = self._schemas.get((db, table.lower()))
        if schema is None:
            raise CatalogError(f"unknown table {db}.{table}")
        return schema

    def stats_of(self, db: str, table: str) -> Optional[TableStats]:
        self._ensure_loaded()
        return self._stats.get((db, table.lower()))

    def override_stats(
        self, db: str, table: str, row_count: float
    ) -> None:
        """Force the cataloged row count of ``db.table``.

        A deliberate-skew hook for the cardinality-feedback bench and
        tests: the planner sees ``row_count`` until the next
        :meth:`refresh` re-reads the engine's real statistics.
        """
        self._ensure_loaded()
        key = (db, table.lower())
        stats = self._stats.get(key)
        if stats is None:
            self._stats[key] = TableStats(
                row_count=float(row_count), columns={}
            )
        else:
            self._stats[key] = dataclasses.replace(
                stats, row_count=float(row_count)
            )

    # -- partitioned tables ------------------------------------------------------------

    def partition_spec(self, table: str) -> Optional[PartitionSpec]:
        """The partitioning of a logical table name, if any."""
        return self._partition_specs.get(table.lower())

    def has_partitions(self) -> bool:
        return bool(self._partition_specs)

    def _resolve_partitioned(self, spec: PartitionSpec) -> ResolvedTable:
        """Synthesize the logical table from its first partition.

        The logical name exists nowhere on the engines — only the
        ``<table>__p<i>`` shards do.  The builder's scan of the logical
        name is a stand-in the expansion pass replaces wholesale, so
        shard 0's schema and holder are representative enough.
        """
        first = partition_name(spec.table, 0)
        db = self.locate(first)
        return ResolvedTable(
            table=spec.table, schema=self.schema_of(db, first), source_db=db
        )

    # -- resolver interface -----------------------------------------------------------

    def resolve_table(self, parts: Tuple[str, ...]) -> ResolvedTable:
        self._ensure_loaded()
        replicas: Tuple[str, ...] = ()
        if len(parts) == 1:
            spec = self.partition_spec(parts[0])
            if spec is not None:
                return self._resolve_partitioned(spec)
        if len(parts) == 2:
            # Qualified names pin the holder: the user chose a replica.
            db, table = parts
            if db not in self._connectors:
                raise CatalogError(f"unknown DBMS {db!r} in {db}.{table}")
        elif len(parts) == 1:
            table = parts[0]
            db = self.locate(table)
            if self._replicated(table.lower()):
                replicas = tuple(self._live_holders(table.lower()))
        else:
            raise CatalogError(f"invalid table name {'.'.join(parts)!r}")
        return ResolvedTable(
            table=table,
            schema=self.schema_of(db, table),
            source_db=db,
            replica_dbs=replicas,
        )

    # -- statistics provider for the global estimator ------------------------------------

    def scan_stats(self, scan: Scan) -> ScanStats:
        """Statistics oracle backing the cross-database estimator."""
        if scan.placeholder:
            rows = scan.estimated_rows if scan.estimated_rows else 1000.0
            return ScanStats(row_count=rows, columns={})
        spec = self.partition_spec(scan.table)
        if spec is not None and scan.partition_of is None:
            return self._partitioned_stats(spec)
        if scan.source_db is None:
            raise CatalogError(
                f"scan of {scan.table!r} has no source DBMS annotation"
            )
        stats = self.stats_of(scan.source_db, scan.table)
        if stats is None:
            return ScanStats(row_count=1000.0, columns={})
        return ScanStats(
            row_count=float(stats.row_count), columns=stats.columns
        )

    def _partitioned_stats(self, spec: PartitionSpec) -> ScanStats:
        """Aggregate shard statistics for a *logical* partitioned scan.

        Row counts sum across shards; column statistics come from the
        first shard with any (an approximation — NDVs of the partition
        key are shard-local, but join ordering only needs the scale).
        """
        rows = 0.0
        columns: Dict[str, object] = {}
        for name in spec.partition_names():
            for db in self._live_holders(name.lower()):
                stats = self.stats_of(db, name)
                if stats is None:
                    continue
                rows += float(stats.row_count)
                if not columns:
                    columns = dict(stats.columns)
                break
        if rows <= 0.0:
            return ScanStats(row_count=1000.0, columns={})
        return ScanStats(row_count=rows, columns=columns)
