"""XDB's global catalog: a Global-as-View union of local schemas (§III).

The catalog is populated through the DBMS connectors during the *prep*
phase (metadata gathering counts toward the §VI-E breakdown) and serves
as the table resolver for the cross-database plan builder: every scan it
produces is tagged with the DBMS the relation lives on (Rule 1's input).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.connect.connector import DBMSConnector
from repro.engine.cost import ScanStats
from repro.engine.stats import TableStats
from repro.errors import CatalogError
from repro.relational.algebra import Scan
from repro.relational.builder import ResolvedTable, TableResolver
from repro.relational.schema import Schema


class GlobalCatalog(TableResolver):
    """Union of the local schemas across all federation members."""

    def __init__(self, connectors: Mapping[str, DBMSConnector]):
        self._connectors = dict(connectors)
        #: (db, table_lower) -> Schema
        self._schemas: Dict[Tuple[str, str], Schema] = {}
        #: table_lower -> list of dbs exposing it
        self._locations: Dict[str, List[str]] = {}
        #: (db, table_lower) -> TableStats
        self._stats: Dict[Tuple[str, str], Optional[TableStats]] = {}
        #: (db, table_lower) -> original table name (case preserved)
        self._names: Dict[Tuple[str, str], str] = {}
        self._loaded = False

    # -- prep phase ------------------------------------------------------------

    def refresh(self, with_stats: bool = True) -> None:
        """Gather metadata from every DBMS through its connector."""
        self._schemas.clear()
        self._locations.clear()
        self._stats.clear()
        self._names.clear()
        for db_name, connector in self._connectors.items():
            for table_name, schema in connector.list_tables().items():
                key = table_name.lower()
                self._schemas[(db_name, key)] = schema
                self._locations.setdefault(key, []).append(db_name)
                self._names[(db_name, key)] = table_name
                if with_stats:
                    self._stats[(db_name, key)] = connector.table_stats(
                        table_name
                    )
        self._loaded = True

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.refresh()

    # -- lookup -------------------------------------------------------------------

    def holders(self, table: str) -> List[str]:
        """Every DBMS exposing ``table``, in registration order."""
        self._ensure_loaded()
        return list(self._locations.get(table.lower(), []))

    def is_replicated(self, table: str) -> bool:
        """Whether ``table`` is held by more than one DBMS as replicas.

        Multiple holders count as replicas only when every copy has an
        identical schema; same-named tables with *different* schemas
        remain ambiguous (the user must qualify them as ``db.table``).
        """
        self._ensure_loaded()
        return self._replicated(table.lower())

    def _replicated(self, key: str) -> bool:
        locations = self._locations.get(key, [])
        if len(locations) < 2:
            return False
        first = self._schemas[(locations[0], key)]
        return all(
            self._schemas[(db, key)] == first for db in locations[1:]
        )

    def locate(self, table: str) -> str:
        """The primary DBMS hosting an unqualified table name.

        For a replicated table this is the first registered holder (the
        annotator may still place the scan on any healthy replica);
        same-named tables with diverging schemas stay ambiguous.
        """
        self._ensure_loaded()
        key = table.lower()
        locations = self._locations.get(key)
        if not locations:
            raise CatalogError(f"unknown table {table!r} in the federation")
        if len(locations) > 1 and not self._replicated(key):
            raise CatalogError(
                f"table {table!r} exists on multiple DBMSes "
                f"({', '.join(locations)}); qualify it as db.table"
            )
        return locations[0]

    def tables(self) -> List[Tuple[str, str]]:
        """All (db, table) pairs in the federation."""
        self._ensure_loaded()
        return [(db, self._names[(db, key)]) for (db, key) in self._schemas]

    def schema_of(self, db: str, table: str) -> Schema:
        self._ensure_loaded()
        schema = self._schemas.get((db, table.lower()))
        if schema is None:
            raise CatalogError(f"unknown table {db}.{table}")
        return schema

    def stats_of(self, db: str, table: str) -> Optional[TableStats]:
        self._ensure_loaded()
        return self._stats.get((db, table.lower()))

    # -- resolver interface -----------------------------------------------------------

    def resolve_table(self, parts: Tuple[str, ...]) -> ResolvedTable:
        self._ensure_loaded()
        replicas: Tuple[str, ...] = ()
        if len(parts) == 2:
            # Qualified names pin the holder: the user chose a replica.
            db, table = parts
            if db not in self._connectors:
                raise CatalogError(f"unknown DBMS {db!r} in {db}.{table}")
        elif len(parts) == 1:
            table = parts[0]
            db = self.locate(table)
            if self._replicated(table.lower()):
                replicas = tuple(self._locations[table.lower()])
        else:
            raise CatalogError(f"invalid table name {'.'.join(parts)!r}")
        return ResolvedTable(
            table=table,
            schema=self.schema_of(db, table),
            source_db=db,
            replica_dbs=replicas,
        )

    # -- statistics provider for the global estimator ------------------------------------

    def scan_stats(self, scan: Scan) -> ScanStats:
        """Statistics oracle backing the cross-database estimator."""
        if scan.placeholder:
            rows = scan.estimated_rows if scan.estimated_rows else 1000.0
            return ScanStats(row_count=rows, columns={})
        if scan.source_db is None:
            raise CatalogError(
                f"scan of {scan.table!r} has no source DBMS annotation"
            )
        stats = self.stats_of(scan.source_db, scan.table)
        if stats is None:
            return ScanStats(row_count=1000.0, columns={})
        return ScanStats(
            row_count=float(stats.row_count), columns=stats.columns
        )
