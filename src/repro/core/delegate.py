"""The delegation engine: Algorithm 1 of the paper (§V-A).

The engine walks the delegation plan depth-first.  For each task it

1. recursively deploys the child tasks, obtaining their view names;
2. creates a **foreign table** on the task's DBMS pointing at each
   child view (``CREATEFOREIGNTABLE``);
3. for **explicit** edges additionally materializes the foreign table
   into a local relation (``CREATELOCALTABLE``, a ``CREATE TABLE AS``);
4. creates a **virtual relation** (a view) for the task's own algebraic
   expression (``CREATEVIRTUALTABLE``) — the paper's safeguard against
   vendor-specific wrapper pushdown: all of the task's operations are
   pinned inside the remote view, so no capability mismatch can leak
   them to the wrong DBMS.

The traversal returns the *XDB query* — ``SELECT * FROM <root view>`` —
which the client runs on the root task's DBMS to trigger the in-situ
cascade (§V-B).  All created objects are short-lived and dropped by
:meth:`DeployedQuery.cleanup`.

Deployment is **transactional** (deploy-or-rollback): if any DDL
statement fails mid-cascade, every object created so far is dropped in
reverse creation order and a structured :class:`DelegationError`
carrying the DDL log is raised — a partially deployed cascade never
leaks onto the autonomous engines.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import DeadlineExceeded, EngineUnavailableError, ReproError

from repro.connect.connector import DBMSConnector
from repro.core.plan import DelegationPlan, Movement, Task, TaskEdge
from repro.drift.ledger import ObjectLedger
from repro.errors import DelegationError
from repro.obs.runtime import current_context
from repro.relational.decompile import plan_to_select
from repro.sql import ast
from repro.sql.render import render


@dataclass
class DeployedQuery:
    """A delegation plan deployed onto the DBMSes, ready to execute."""

    plan: DelegationPlan
    root_db: str
    xdb_query: ast.Select
    #: (db, object kind, object name) in creation order
    created_objects: List[Tuple[str, str, str]]
    #: (db, rendered DDL) in execution order — Fig. 7 style
    ddl_log: List[Tuple[str, str]]
    #: edge -> producing view name (for ledger attribution)
    edge_views: Dict[int, str]
    #: (db, table name, CTAS statement) per explicit edge, so a prepared
    #: query can refresh its materializations before re-execution
    materializations: List[Tuple[str, str, ast.CreateTableAs]] = field(
        default_factory=list
    )
    #: the client's delegated-object ledger and this deployment's epoch
    #: in it — cleanup retires the epoch so the reaper may collect
    #: whatever a failed drop leaves behind
    ledger: Optional[ObjectLedger] = None
    epoch: int = 0
    #: namespaced epoch prefix baked into every object name — mid-query
    #: adaptation reconstructs ``xm_{query_id}_{task_id}`` from it when
    #: pinning executed producers
    query_id: str = ""
    _connectors: Mapping[str, DBMSConnector] = field(
        repr=False, default_factory=dict
    )

    def _connector(self, db: str) -> DBMSConnector:
        connector = self._connectors.get(db) if self._connectors else None
        if connector is None:
            raise DelegationError(
                f"no connector for DBMS {db!r} — this DeployedQuery was "
                "built without its federation's connectors"
            )
        return connector

    def cleanup(self) -> None:
        """Drop every short-lived object, consumers before producers.

        Best-effort and idempotent: objects whose DROP fails stay
        queued so a later call can retry; a second call over an empty
        ledger is a no-op.  Initiating cleanup retires this
        deployment's ledger epoch — from here on the reaper may
        collect whatever a failed drop leaves behind.
        """
        if self.ledger is not None and self.epoch:
            self.ledger.close_epoch(self.epoch)
        remaining: List[Tuple[str, str, str]] = []
        errors: List[str] = []
        for db, kind, name in reversed(self.created_objects):
            try:
                self._connector(db).execute_ddl(
                    ast.DropObject(kind=kind, name=name, if_exists=True)
                )
                if self.ledger is not None:
                    self.ledger.mark_dropped(db, name)
            except ReproError as exc:
                remaining.append((db, kind, name))
                errors.append(f"{kind} {name!r} on {db!r}: {exc}")
                if self.ledger is not None:
                    self.ledger.mark_leaked(db, name)
        self.created_objects[:] = list(reversed(remaining))
        if errors:
            raise DelegationError(
                "cleanup could not drop every short-lived object: "
                + "; ".join(errors),
                leaked=remaining,
            )

    def refresh_materializations(self) -> None:
        """Re-run every explicit edge's CTAS against fresh base data.

        Views (implicit edges) always see fresh data; materialized
        intermediates are snapshots and must be rebuilt before a
        prepared query re-executes.  The rebuild uses ``CREATE OR
        REPLACE TABLE AS`` — the engine computes the fresh result
        before swapping, so a failing CTAS leaves the previous
        snapshot in place instead of a missing table.
        """
        for db, table_name, ctas in self.materializations:
            refresh = dataclasses.replace(ctas, or_replace=True)
            self._connector(db).execute_ddl(refresh)


class DelegationEngine:
    """Rewrites delegation plans into DBMS-specific DDL (Algorithm 1)."""

    def __init__(
        self,
        connectors: Mapping[str, DBMSConnector],
        namespace: str = "",
        ledger: Optional[ObjectLedger] = None,
    ):
        self._connectors = dict(connectors)
        #: prefix folded into every created object name — concurrent
        #: clients of one federation use distinct namespaces so their
        #: short-lived ``xf_/xm_/xv_`` objects cannot collide
        self._namespace = namespace
        #: durable record of every object ever created (drift PR);
        #: a restarted client resumes its counter above the ledger's
        #: highest epoch so new names cannot collide with leaked ones
        self._ledger = ledger
        self._query_counter = ledger.max_epoch() if ledger else 0

    def delegate(
        self, dplan: DelegationPlan, salvage: bool = False
    ) -> DeployedQuery:
        """Deploy ``dplan``; returns the XDB query for the client.

        With ``salvage`` set, a mid-cascade failure keeps completed
        explicit-edge ``xm_`` snapshots that live on engines *other*
        than the dead one instead of rolling them back — the raised
        :class:`DelegationError` reports them in ``salvaged`` so the
        pipeline's branch-scoped recovery can pin and re-fence them
        (the caller owns dropping them if it cannot).
        """
        self._query_counter += 1
        epoch = self._query_counter
        query_id = f"{self._namespace}{epoch}"
        if self._ledger is not None:
            self._ledger.open_epoch(epoch)
        created: List[Tuple[str, str, str]] = []
        ddl_log: List[Tuple[str, str]] = []
        edge_views: Dict[int, str] = {}
        materializations: List[Tuple[str, str, ast.CreateTableAs]] = []

        try:
            root_view = self._process_task(
                dplan,
                dplan.root,
                query_id,
                epoch,
                created,
                ddl_log,
                edge_views,
                materializations,
            )
        except DeadlineExceeded as exc:
            # Cooperative cancellation: the query's budget expired
            # mid-cascade.  The in-flight DDL is still rolled back —
            # under the deadline's bounded *grace* budget, so cleanup
            # cannot hang forever either — and the structured error
            # carries the exact accounting: what was dropped and what
            # (if the grace budget also ran out) was leaked.
            ctx = current_context()
            deadline = getattr(ctx, "deadline", None) if ctx else None
            if deadline is not None:
                with deadline.grace():
                    rolled_back, leaked = self._rollback(created)
            else:
                rolled_back, leaked = self._rollback(created)
            exc.rolled_back = rolled_back
            exc.leaked = leaked
            self._settle_epoch(epoch, rolled_back, leaked)
            self._note(
                "deadline-cancelled",
                phase=exc.phase,
                rolled_back=len(rolled_back),
                leaked=len(leaked),
            )
            raise
        except ReproError as exc:
            # When the cause is a dead engine, don't try to DROP the
            # objects created on it — every attempt would fail (or burn
            # the retry budget); mark them leaked for a later cleanup.
            # A *shard*-scoped outage (exc.table set) leaves the engine
            # itself answering, so nothing is skipped.
            shard = (
                getattr(exc, "table", None)
                if isinstance(exc, EngineUnavailableError)
                else None
            )
            dead_db = (
                exc.db
                if isinstance(exc, EngineUnavailableError) and shard is None
                else None
            )
            salvaged = (
                self._salvageable(created, materializations, dead_db)
                if salvage
                else []
            )
            keep_set = {
                (db, kind, name) for _tid, db, kind, name in salvaged
            }
            to_rollback = [obj for obj in created if obj not in keep_set]
            rolled_back, leaked = self._rollback(
                to_rollback, skip_db=dead_db
            )
            self._settle_epoch(epoch, rolled_back, leaked)
            failed_db = ddl_log[-1][0] if ddl_log else None
            message = (
                f"delegation failed after {len(ddl_log)} DDL "
                f"statement(s): {exc}; rolled back "
                f"{len(rolled_back)} object(s)"
            )
            if leaked:
                message += f", could not drop {len(leaked)} object(s)"
            if salvaged:
                message += (
                    f", salvaged {len(salvaged)} completed snapshot(s)"
                )
                self._note(
                    "salvage",
                    count=len(salvaged),
                    objects=",".join(name for _t, _d, _k, name in salvaged),
                )
            raise DelegationError(
                message,
                ddl_log=ddl_log,
                rolled_back=rolled_back,
                leaked=leaked,
                failed_db=failed_db,
                salvaged=salvaged,
            ) from exc

        xdb_query = ast.Select(
            items=(ast.SelectItem(ast.Star()),),
            from_items=(ast.TableRef((root_view,)),),
        )
        return DeployedQuery(
            plan=dplan,
            root_db=dplan.root.annotation,
            xdb_query=xdb_query,
            created_objects=created,
            ddl_log=ddl_log,
            edge_views=edge_views,
            materializations=materializations,
            ledger=self._ledger,
            epoch=epoch,
            query_id=query_id,
            _connectors=self._connectors,
        )

    @staticmethod
    def _salvageable(
        created: List[Tuple[str, str, str]],
        materializations: List[Tuple[str, str, ast.CreateTableAs]],
        dead_db: Optional[str],
    ) -> List[Tuple[int, str, str, str]]:
        """Completed ``xm_`` snapshots worth keeping through a rollback.

        Only explicit-edge materializations whose CTAS finished (they
        are in ``materializations``) and that live on a healthy engine
        qualify; the producer task id is parsed back out of the
        ``xm_{query_id}_{task_id}`` name so the pipeline can pin the
        matching subtree.
        """
        finished = {(db, name) for db, name, _ctas in materializations}
        out: List[Tuple[int, str, str, str]] = []
        for db, kind, name in created:
            if kind != "TABLE" or db == dead_db:
                continue
            if (db, name) not in finished:
                continue
            try:
                task_id = int(name.rsplit("_", 1)[1])
            except (IndexError, ValueError):
                continue
            out.append((task_id, db, kind, name))
        return out

    def _settle_epoch(
        self,
        epoch: int,
        rolled_back: List[Tuple[str, str, str]],
        leaked: List[Tuple[str, str, str]],
    ) -> None:
        """Account a rolled-back cascade in the ledger and retire its
        epoch — whatever the rollback could not drop is now reapable."""
        if self._ledger is None:
            return
        for db, _kind, name in rolled_back:
            self._ledger.mark_dropped(db, name)
        for db, _kind, name in leaked:
            self._ledger.mark_leaked(db, name)
        self._ledger.close_epoch(epoch)

    def _rollback(
        self,
        created: List[Tuple[str, str, str]],
        skip_db: Optional[str] = None,
    ) -> Tuple[List[Tuple[str, str, str]], List[Tuple[str, str, str]]]:
        """Drop partially created objects, newest first (best effort).

        Returns ``(rolled_back, leaked)`` — drops go through the
        connectors' retry layer, so transient faults during rollback
        are absorbed; an object is only reported leaked when its DROP
        exhausts the retry budget.  Objects on ``skip_db`` (an engine
        known to be down) are marked leaked without a drop attempt.
        """
        rolled_back: List[Tuple[str, str, str]] = []
        leaked: List[Tuple[str, str, str]] = []
        for db, kind, name in reversed(created):
            connector = self._connectors.get(db)
            if connector is None or db == skip_db:
                leaked.append((db, kind, name))
                self._note("rollback-leaked", db=db, kind=kind, object=name)
                continue
            try:
                connector.execute_ddl(
                    ast.DropObject(kind=kind, name=name, if_exists=True)
                )
                rolled_back.append((db, kind, name))
                self._note("rollback-drop", db=db, kind=kind, object=name)
            except ReproError:
                leaked.append((db, kind, name))
                self._note("rollback-leaked", db=db, kind=kind, object=name)
        return rolled_back, leaked

    @staticmethod
    def _note(name: str, **attributes: object) -> None:
        """Annotate the active query trace (if any) with a point event."""
        ctx = current_context()
        if ctx is not None:
            ctx.tracer.add_event(name, **attributes)

    # -- Algorithm 1 -------------------------------------------------------------

    def _process_task(
        self,
        dplan: DelegationPlan,
        task: Task,
        query_id: str,
        epoch: int,
        created: List[Tuple[str, str, str]],
        ddl_log: List[Tuple[str, str]],
        edge_views: Dict[int, str],
        materializations: List[Tuple[str, str, ast.CreateTableAs]],
    ) -> str:
        connector = self._connectors.get(task.annotation)
        if connector is None:
            raise DelegationError(
                f"no connector for DBMS {task.annotation!r}"
            )

        for edge in dplan.in_edges(task):
            child = dplan.tasks[edge.producer_id]
            child_view = self._process_task(
                dplan,
                child,
                query_id,
                epoch,
                created,
                ddl_log,
                edge_views,
                materializations,
            )
            edge_views[id(edge)] = child_view

            # CREATEFOREIGNTABLE(R_v, t.a)
            foreign_name = f"xf_{query_id}_{child.task_id}"
            columns = tuple(
                ast.ColumnDef(fld.name, fld.type)
                for fld in child.expr.schema
            )
            create_ft = ast.CreateForeignTable(
                name=foreign_name,
                columns=columns,
                server=child.annotation,
                remote_object=child_view,
            )
            self._run_ddl(connector, create_ft, ddl_log)
            self._track(
                created, epoch, task.annotation, "FOREIGN TABLE", foreign_name
            )

            if edge.movement is Movement.EXPLICIT:
                # CREATELOCALTABLE(R'_v, t.a): materialize on the consumer.
                local_name = f"xm_{query_id}_{child.task_id}"
                ctas = ast.CreateTableAs(
                    name=local_name,
                    query=ast.Select(
                        items=(ast.SelectItem(ast.Star()),),
                        from_items=(ast.TableRef((foreign_name,)),),
                    ),
                )
                self._run_ddl(connector, ctas, ddl_log)
                self._track(
                    created, epoch, task.annotation, "TABLE", local_name
                )
                materializations.append(
                    (task.annotation, local_name, ctas)
                )
                resolved_name = local_name
            else:
                resolved_name = foreign_name

            self._resolve_placeholder(task, edge, resolved_name)

        # CREATEVIRTUALTABLE(t.r, t.a)
        view_name = f"xv_{query_id}_{task.task_id}"
        select = plan_to_select(task.expr)
        create_view = ast.CreateView(name=view_name, query=select)
        self._run_ddl(connector, create_view, ddl_log)
        self._track(created, epoch, task.annotation, "VIEW", view_name)
        return view_name

    def _track(
        self,
        created: List[Tuple[str, str, str]],
        epoch: int,
        db: str,
        kind: str,
        name: str,
    ) -> None:
        """Record one freshly created object (in-memory + ledger).

        Ledger recording happens per object, *as created*, so a crash
        mid-cascade still leaves a durable trail for the reaper."""
        created.append((db, kind, name))
        if self._ledger is not None:
            self._ledger.record(db, kind, name, epoch)

    def _run_ddl(
        self,
        connector: DBMSConnector,
        statement: ast.Statement,
        ddl_log: List[Tuple[str, str]],
    ) -> None:
        rendered = render(statement, connector.database.dialect)
        ddl_log.append((connector.name, rendered))
        self._note("ddl", db=connector.name, sql=rendered)
        connector.execute_ddl(statement)

    @staticmethod
    def _resolve_placeholder(
        task: Task, edge: TaskEdge, object_name: str
    ) -> None:
        """Point the ``?`` placeholder scan at the created object."""
        for scan in task.expr.leaves():
            if scan.placeholder and scan.binding == edge.placeholder:
                scan.table = object_name
                return
        raise DelegationError(
            f"placeholder {edge.placeholder!r} not found in task "
            f"{task.task_id}"
        )
