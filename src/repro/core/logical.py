"""Phase 1 — cross-database logical optimization (§IV-B1).

Runs the shared textbook rewrites — selection/projection pushdown and
left-deep join ordering — with a *global* cardinality estimator backed
by statistics the prep phase gathered through the connectors.  The
output is an optimized logical plan whose every node carries an
estimated cardinality (the annotator's Rule 4 consumes them).
"""

from __future__ import annotations

from typing import Optional

from repro.core.catalog import GlobalCatalog
from repro.core.partition import expand_partitions
from repro.engine.cost import CardinalityEstimator
from repro.relational import algebra
from repro.relational.builder import build_plan
from repro.relational.optimizer import (
    prune_columns,
    push_filters,
    reorder_joins,
)
from repro.sql import ast


class LogicalOptimizer:
    """Builds and optimizes the logical plan for a cross-database query.

    ``plan_shape`` selects the join-ordering search space: the paper
    restricts itself to left-deep trees; ``"bushy"`` enables the full
    DP the authors defer to future work (§IV-B footnote 5).

    ``feedback`` (a :class:`repro.feedback.store.FeedbackOverlay` or
    None) overlays learned cardinalities on every estimator this
    optimizer builds, so a replanned query searches the join-order
    space with observed row counts instead of the catalog's model.
    """

    def __init__(
        self,
        catalog: GlobalCatalog,
        plan_shape: str = "left-deep",
        feedback: Optional[object] = None,
    ):
        self._catalog = catalog
        self._plan_shape = plan_shape
        self.feedback = feedback

    def optimize(self, query: ast.Select) -> algebra.LogicalPlan:
        """Bind ``query`` and apply the Phase-1 rewrites."""
        plan = build_plan(query, self._catalog)
        return self.optimize_plan(plan)

    def optimize_plan(
        self, plan: algebra.LogicalPlan
    ) -> algebra.LogicalPlan:
        plan = push_filters(plan)
        estimator = CardinalityEstimator(
            self._catalog.scan_stats, feedback=self.feedback
        )
        plan = reorder_joins(
            plan,
            cardinality=estimator.estimate_rows,
            ndv=estimator.estimate_ndv,
            shape=self._plan_shape,
        )
        plan = prune_columns(plan)
        if self._catalog.has_partitions():
            # Last rewrite: replace partitioned-table scans with their
            # per-shard branches (zipping co-partitioned joins,
            # broadcasting small sides, gathering the rest under UNION
            # ALL).  Runs after join ordering so the DP searches the
            # compact logical space, not one blown up per shard.
            plan = expand_partitions(
                plan,
                self._catalog.partition_spec,
                lambda name: self._catalog.resolve_table((name,)),
            )
        # A fresh estimator pass annotates every node of the final tree
        # with its cardinality (the rewrites rebuilt the nodes).
        final_estimator = CardinalityEstimator(
            self._catalog.scan_stats, feedback=self.feedback
        )
        final_estimator.estimate_rows(plan)
        _annotate_all(plan, final_estimator)
        return plan


def _annotate_all(
    plan: algebra.LogicalPlan, estimator: CardinalityEstimator
) -> None:
    estimator.estimate_rows(plan)
    for child in plan.children():
        _annotate_all(child, estimator)
