"""Pipeline-aware schedule simulation for delegated executions.

Engines run in-process, so wall-clock time says nothing about the
testbed the paper measured.  Instead, runtimes are *derived*: each
task's processing time comes from its engine's calibrated cost model
evaluated at the **observed** cardinalities, and each edge's transfer
time from the simulated link characteristics and the bytes actually
moved.  The schedule respects the paper's dataflow semantics:

* an **implicit** (pipelined) edge lets the consumer start as soon as
  the producer starts — processing and transfer overlap (``max``);
* an **explicit** (materialized) edge serializes — the producer must
  finish and the transfer complete before the consumer starts (``sum``).

The same machinery exposes helpers the mediator baselines use, so all
systems are timed under one model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.connect.connector import DBMSConnector
from repro.core.delegate import DeployedQuery
from repro.core.plan import DelegationPlan, Movement, Task, TaskEdge
from repro.engine.cost import CardinalityEstimator, CostModel, ScanStats
from repro.engine.fdw import PROTOCOL_CPU_FACTORS
from repro.net.network import Network, TransferRecord
from repro.obs.runtime import current_context
from repro.relational import algebra


@dataclass
class TaskTiming:
    """Simulated schedule entry for one task."""

    task_id: int
    db: str
    start: float
    proc_seconds: float
    finish: float


@dataclass
class ScheduleResult:
    """Output of the schedule simulation."""

    total_seconds: float
    execution_seconds: float  # without the final result transfer
    result_transfer_seconds: float
    tasks: Dict[int, TaskTiming] = field(default_factory=dict)

    def critical_finish(self) -> float:
        return max(
            (timing.finish for timing in self.tasks.values()), default=0.0
        )


def attribute_edge_stats(
    deployed: DeployedQuery, ledger: Iterable[TransferRecord]
) -> None:
    """Fill each edge's moved rows/bytes from the transfer ledger.

    Fetches through a foreign table are tagged ``fdw:<remote object>``;
    each delegation edge is backed by exactly one producing view.
    """
    by_view: Dict[str, Tuple[int, int]] = {}
    for record in ledger:
        if record.tag.startswith("fdw:"):
            view = record.tag[len("fdw:") :]
            rows, payload = by_view.get(view, (0, 0))
            by_view[view] = (rows + record.rows, payload + record.payload_bytes)
    for edge in deployed.plan.edges:
        view = deployed.edge_views.get(id(edge), "").lower()
        rows, payload = by_view.get(view, (0, 0))
        edge.moved_rows = rows
        edge.moved_bytes = payload


def simulate_schedule(
    deployed: DeployedQuery,
    connectors: Mapping[str, DBMSConnector],
    network: Network,
    client_node: str,
    result_bytes: int,
    pipelined: bool = True,
    worker_slots: Optional[int] = None,
) -> ScheduleResult:
    """Simulate the decentralized execution of a deployed plan.

    ``pipelined=False`` is an ablation switch: implicit edges are timed
    as if materialized (producer → transfer → consumer strictly
    serialize), quantifying how much of XDB's win comes from the
    inter-DBMS pipelining of §V-B.

    ``worker_slots`` caps how many delegated tasks one engine advances
    at a time (its intra-query worker pool).  ``None`` keeps the legacy
    unbounded overlap; an integer K greedily assigns each task the
    engine slot that frees up earliest, so per-partition fragments on
    the same engine overlap up to K-wide.
    """
    dplan = deployed.plan
    proc = {
        task.task_id: _task_processing_seconds(task, dplan, connectors)
        for task in dplan.tasks.values()
    }

    start: Dict[int, float] = {}
    finish: Dict[int, float] = {}
    # engine name -> per-slot busy-until times (worker_slots mode only)
    slots: Dict[str, List[float]] = {}

    def schedule(task: Task) -> float:
        if task.task_id in finish:
            return finish[task.task_id]
        ready = 0.0
        absolute_bounds: List[float] = []  # earliest-finish constraints
        duration_bounds: List[float] = []  # bandwidth-bound stream times
        for edge in dplan.in_edges(task):
            child = dplan.tasks[edge.producer_id]
            child_finish = schedule(child)
            xfer = _edge_transfer_seconds(edge, child, task, connectors, network)
            link_latency = network.link_for(
                connectors[child.annotation].node,
                connectors[task.annotation].node,
            ).latency
            if edge.movement is Movement.EXPLICIT or not pipelined:
                ready = max(ready, child_finish + xfer)
            else:
                # Pipelined: consumption starts shortly after production,
                # but cannot finish before the stream fully arrives.
                ready = max(ready, start[child.task_id] + link_latency)
                absolute_bounds.append(child_finish + link_latency)
                duration_bounds.append(xfer)
        slot_index: Optional[int] = None
        if worker_slots is not None:
            engine_slots = slots.setdefault(
                task.annotation, [0.0] * worker_slots
            )
            slot_index = min(
                range(worker_slots), key=engine_slots.__getitem__
            )
            ready = max(ready, engine_slots[slot_index])
        start[task.task_id] = ready
        end = ready + proc[task.task_id]
        for bound in absolute_bounds:
            end = max(end, bound)
        for duration in duration_bounds:
            end = max(end, ready + duration)
        if slot_index is not None:
            slots[task.annotation][slot_index] = end
        finish[task.task_id] = end
        return end

    execution_seconds = schedule(dplan.root)

    root_node = connectors[dplan.root.annotation].node
    result_transfer = network.transfer_time(
        root_node, client_node, result_bytes
    )
    result = ScheduleResult(
        total_seconds=execution_seconds + result_transfer,
        execution_seconds=execution_seconds,
        result_transfer_seconds=result_transfer,
    )
    for task in dplan.tasks.values():
        result.tasks[task.task_id] = TaskTiming(
            task_id=task.task_id,
            db=task.annotation,
            start=start[task.task_id],
            proc_seconds=proc[task.task_id],
            finish=finish[task.task_id],
        )
    ctx = current_context()
    if ctx is not None:
        ctx.record_schedule(result)
    return result


# ---------------------------------------------------------------------------
# per-task processing time
# ---------------------------------------------------------------------------


def _task_processing_seconds(
    task: Task,
    dplan: DelegationPlan,
    connectors: Mapping[str, DBMSConnector],
) -> float:
    connector = connectors[task.annotation]
    database = connector.database
    profile = database.profile

    edge_rows = {
        edge.placeholder: float(edge.moved_rows or 0)
        for edge in dplan.in_edges(task)
    }

    def stats_provider(scan: algebra.Scan) -> ScanStats:
        if scan.placeholder:
            rows = edge_rows.get(scan.binding)
            if rows is None:
                rows = scan.estimated_rows or 1.0
            return ScanStats(row_count=max(rows, 1.0), columns={})
        return database.planner.scan_stats(scan)

    estimator = CardinalityEstimator(stats_provider)
    cost_units = CostModel(profile).plan_cost(task.expr, estimator)
    seconds = profile.startup_latency + profile.cost_to_seconds(cost_units)

    # Align the schedule with the annotator's costing model (the
    # connectors' estimate_join_cost): implicit inputs cannot be hashed
    # — the consuming join must build on its local side — while explicit
    # inputs pay load + rescan but restore the free build-side choice.
    for edge in dplan.in_edges(task):
        child = dplan.tasks[edge.producer_id]
        rows = float(edge.moved_rows or 0)
        placeholder, sibling = _consuming_join_sides(task, edge.placeholder)
        if edge.movement is Movement.EXPLICIT:
            extra = rows * 2 * profile.seq_scan_cost_per_row
            extra += profile.startup_cost * 5 + 200.0
            seconds += profile.cost_to_seconds(extra)
        elif sibling is not None:
            sibling_rows = max(estimator.estimate_rows(sibling), 1.0)
            if rows < sibling_rows:
                # Forced hash build on the (larger) local side instead
                # of the small arriving stream.
                penalty = (sibling_rows - rows) * (
                    profile.hash_build_cost_per_row
                )
                seconds += profile.cost_to_seconds(penalty)

        # Text-protocol decode overhead on the consumer side.
        protocol = _edge_protocol(child, task, connectors)
        extra_factor = PROTOCOL_CPU_FACTORS[protocol] - 1.0
        if extra_factor > 0 and rows:
            seconds += profile.cost_to_seconds(
                rows * profile.foreign_fetch_cost_per_row * extra_factor
            )
    return seconds


def _consuming_join_sides(task: Task, placeholder: str):
    """The placeholder scan and its sibling input in the consuming join."""

    def walk(node: algebra.LogicalPlan):
        if isinstance(node, algebra.Join):
            for side, other in (
                (node.left, node.right),
                (node.right, node.left),
            ):
                for leaf in side.leaves():
                    if leaf.placeholder and leaf.binding == placeholder:
                        # Only direct consumption counts: the
                        # placeholder side must be the scan itself or a
                        # thin chain above it.
                        if leaf is side or leaf in side.children():
                            return leaf, other
        for child in node.children():
            found = walk(child)
            if found is not None:
                return found
        return None

    found = walk(task.expr)
    if found is None:
        for leaf in task.expr.leaves():
            if leaf.placeholder and leaf.binding == placeholder:
                return leaf, None
        return None, None
    return found


def _edge_protocol(
    producer: Task, consumer: Task, connectors: Mapping[str, DBMSConnector]
) -> str:
    from repro.federation.deployment import protocol_between

    return protocol_between(
        connectors[producer.annotation].profile.name,
        connectors[consumer.annotation].profile.name,
    )


def _edge_transfer_seconds(
    edge: TaskEdge,
    producer: Task,
    consumer: Task,
    connectors: Mapping[str, DBMSConnector],
    network: Network,
) -> float:
    payload = edge.moved_bytes or 0
    return network.transfer_time(
        connectors[producer.annotation].node,
        connectors[consumer.annotation].node,
        payload,
    )


# ---------------------------------------------------------------------------
# helpers shared with the mediator baselines
# ---------------------------------------------------------------------------


def processing_seconds_for_rows(
    connector: DBMSConnector,
    rows_in: float,
    rows_out: float,
    protocol: str = "binary",
) -> float:
    """Generic per-relation processing time at a DBMS (scan + emit)."""
    profile = connector.profile
    units = (
        rows_in * profile.seq_scan_cost_per_row
        + rows_out * profile.cpu_tuple_cost
    )
    seconds = profile.startup_latency + profile.cost_to_seconds(units)
    extra = PROTOCOL_CPU_FACTORS[protocol] - 1.0
    if extra > 0:
        seconds += profile.cost_to_seconds(
            rows_out * profile.cpu_tuple_cost * extra
        )
    return seconds
