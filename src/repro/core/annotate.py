"""Phase 2 — plan annotation (§IV-B2, Rules 1–4).

A depth-first post-order traversal assigns every operator a DBMS
annotation and every edge a dataflow type:

* **Rule 1** — table scans are annotated with the DBMS holding the table;
* **Rule 2** — unary operators inherit their input's annotation
  (implicit edge);
* **Rule 3** — binary operators whose inputs share an annotation
  inherit it (implicit edges);
* **Rule 4** — for cross-database binary operators, solve Eq. 1:
  ``argmin cost(o, a) + cost(o_l →x o, a) + cost(o_r →x o, a)``
  over ``a ∈ A({o_l, o_r})`` (the paper's pruning — a third DBMS is
  never considered, Fig. 5c) and ``x ∈ {i, e}``.

Costs come from the *consulting approach*: the connectors' costing
functions (wrapping EXPLAIN) are probed per candidate — four options
per cross-database join under the default pruning, so consultation
round-trips stay linear in the number of cross-database operators
(§VI-E).

Ablation knobs (exercised by ``benchmarks/bench_ablation_*``):

* ``movement_policy`` — ``"cost"`` (Eq. 1, default), ``"implicit"``
  (always pipeline), or ``"explicit"`` (always materialize, the
  Sclera-style strategy);
* ``prune_candidates`` — when False, Rule 4 considers *every* DBMS as
  a placement candidate (the O(|A|·|O|) alternative the paper prunes),
  moving both inputs when a third DBMS wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.connect.connector import DBMSConnector
from repro.core.plan import Movement
from repro.engine.fdw import PROTOCOL_FACTORS
from repro.errors import EngineUnavailableError, OptimizerError
from repro.federation.deployment import protocol_between
from repro.net.network import Network
from repro.relational import algebra

MOVEMENT_POLICIES = ("cost", "implicit", "explicit")


@dataclass
class Annotation:
    """The annotator's output: per-node DBMS and per-edge movement.

    Keys are ``id(node)``, so the annotation pins a strong reference
    to every node it mentions (``_node_refs``): without it, a GC'd
    plan node could alias a reused id and return stale annotations.
    Populate via :meth:`bind_node` / :meth:`bind_edge`, which maintain
    the references.
    """

    #: id(node) -> DBMS name
    node_db: Dict[int, str] = field(default_factory=dict)
    #: (id(child), id(parent)) -> Movement
    edge_move: Dict[Tuple[int, int], Movement] = field(default_factory=dict)
    #: consultation round-trips performed (§VI-E metric)
    consultations: int = 0
    #: Rule-4 decisions, for tests/inspection: id(join) -> decision
    decisions: Dict[int, "PlacementDecision"] = field(default_factory=dict)
    #: id(node) -> node: keeps annotated nodes alive while the
    #: annotation is, so an id can never be recycled under us
    _node_refs: Dict[int, algebra.LogicalPlan] = field(
        default_factory=dict, repr=False
    )

    def bind_node(self, node: algebra.LogicalPlan, db: str) -> None:
        self.node_db[id(node)] = db
        self._node_refs[id(node)] = node

    def bind_edge(
        self,
        child: algebra.LogicalPlan,
        parent: algebra.LogicalPlan,
        movement: Movement,
    ) -> None:
        self.edge_move[(id(child), id(parent))] = movement
        self._node_refs[id(child)] = child
        self._node_refs[id(parent)] = parent

    def db_of(self, node: algebra.LogicalPlan) -> str:
        try:
            return self.node_db[id(node)]
        except KeyError:
            raise OptimizerError(
                f"node {type(node).__name__} was never annotated"
            )

    def move_of(
        self, child: algebra.LogicalPlan, parent: algebra.LogicalPlan
    ) -> Movement:
        return self.edge_move[(id(child), id(parent))]


@dataclass(frozen=True)
class PlacementDecision:
    """One evaluated Rule-4 alternative set (for observability)."""

    chosen_db: str
    left_movement: Movement
    right_movement: Movement
    #: (db, "left_move/right_move", seconds) per evaluated alternative
    costs: Tuple[Tuple[str, str, float], ...]

    @property
    def chosen_movement(self) -> Movement:
        """The strongest movement used by any moving input."""
        if Movement.EXPLICIT in (self.left_movement, self.right_movement):
            return Movement.EXPLICIT
        return Movement.IMPLICIT


class PlanAnnotator:
    """Runs the annotation traversal over an optimized logical plan."""

    def __init__(
        self,
        connectors: Mapping[str, DBMSConnector],
        network: Network,
        movement_policy: str = "cost",
        prune_candidates: bool = True,
        catalog=None,
    ):
        if movement_policy not in MOVEMENT_POLICIES:
            raise OptimizerError(
                f"unknown movement policy {movement_policy!r}; "
                f"expected one of {MOVEMENT_POLICIES}"
            )
        self._connectors = dict(connectors)
        self._network = network
        self._movement_policy = movement_policy
        self._prune_candidates = prune_candidates
        #: optional GlobalCatalog — when set, Rule 1 skips holders the
        #: catalog quarantined after unreconcilable schema drift (cached
        #: logical plans may carry replica sets that predate the
        #: quarantine)
        self._catalog = catalog

    def annotate(self, plan: algebra.LogicalPlan) -> Annotation:
        annotation = Annotation()
        self._visit(plan, annotation)
        return annotation

    # -- traversal -------------------------------------------------------------

    def _visit(
        self,
        node: algebra.LogicalPlan,
        annotation: Annotation,
        prefer: Optional[str] = None,
    ) -> str:
        children = node.children()

        if isinstance(node, algebra.Scan):
            db = self._place_scan(node, prefer)
            annotation.bind_node(node, db)
            return db

        if len(children) == 1:
            child_db = self._visit(children[0], annotation, prefer)
            annotation.bind_node(node, child_db)
            annotation.bind_edge(children[0], node, Movement.IMPLICIT)
            return child_db

        if isinstance(node, (algebra.Join, algebra.Union)):
            # Partition-wise placement: each side's replica choices are
            # steered toward the DBMS hosting that side's partition
            # branch, so a replicated dimension joining a shard lands
            # on the shard's engine and the fragment stays in-situ
            # (Rule 3 then keeps the whole branch implicit).
            left_anchor = self._partition_anchor(node.left) or prefer
            right_anchor = self._partition_anchor(node.right) or prefer
            left_db = self._visit(node.left, annotation, left_anchor)
            right_db = self._visit(node.right, annotation, right_anchor)
            if left_db == right_db:
                # Rule 3.
                annotation.bind_node(node, left_db)
                annotation.bind_edge(node.left, node, Movement.IMPLICIT)
                annotation.bind_edge(node.right, node, Movement.IMPLICIT)
                return left_db
            return self._rule4(node, left_db, right_db, annotation)

        raise OptimizerError(
            f"cannot annotate node {type(node).__name__} with "
            f"{len(children)} children"
        )

    # -- degradation-aware placement (replica-aware Rule 1) -------------

    def _partition_anchor(
        self, node: algebra.LogicalPlan
    ) -> Optional[str]:
        """The DBMS that would host the first partition-branch scan
        under ``node`` (None when the subtree touches no partition)."""
        for leaf in node.leaves():
            if (
                isinstance(leaf, algebra.Scan)
                and leaf.partition_of is not None
                and not leaf.placeholder
            ):
                try:
                    return self._place_scan(leaf)
                except (OptimizerError, EngineUnavailableError):
                    return None
        return None

    def _place_scan(
        self, scan: algebra.Scan, prefer: Optional[str] = None
    ) -> str:
        """Rule 1 over replicas: the cheapest *healthy* holder wins.

        Un-replicated tables keep the old behavior — the single holder
        is mandatory, and a dead data-holding DBMS is unrecoverable, so
        raise a clear diagnostic instead of letting a connector error
        surface as a stack trace later.  For a replicated table every
        healthy holder is a candidate; the cheapest one (by calibrated
        sequential-scan cost at the holder's engine profile) is chosen,
        with ``prefer`` (the enclosing join's partition anchor, if any)
        breaking cost ties ahead of the holder name.  ``db=None`` on
        the raised error marks the condition unrepairable: there is no
        surviving replica to re-plan onto.
        """
        holders = list(scan.replica_dbs) or (
            [scan.source_db] if scan.source_db else []
        )
        if not holders:
            raise OptimizerError(
                f"scan of {scan.table!r} lacks a source DBMS "
                "(Rule 1 needs the global catalog annotation)"
            )
        if self._catalog is not None and not scan.placeholder:
            admitted = [
                db
                for db in holders
                if not self._catalog.is_quarantined(db, scan.table)
            ]
            if not admitted:
                # Every holder drifted beyond reconciliation: like an
                # all-holders outage, but no amount of waiting repairs
                # it — only a catalog refresh re-admits the table.
                raise EngineUnavailableError(
                    f"every holder {holders} of table {scan.table!r} is "
                    "quarantined after unreconcilable schema drift; "
                    "refresh the catalog to re-admit one",
                    table=scan.table,
                )
            holders = admitted
        healthy = [db for db in holders if self._available(db)]
        if not healthy:
            raise EngineUnavailableError(
                f"DBMS {holders} holding table {scan.table!r} "
                "is unreachable; the query cannot be answered until "
                "a holder recovers"
                if len(holders) == 1
                else f"every holder {holders} of replicated table "
                f"{scan.table!r} is unreachable; the query cannot be "
                "answered until one recovers",
                table=scan.table,
            )
        if len(healthy) == 1:
            return healthy[0]
        rows = scan.estimated_rows or 1000.0

        def scan_cost(db: str) -> Tuple[float, int, str]:
            connector = self._connectors.get(db)
            if connector is None:
                return (float("inf"), 1, db)
            profile = connector.profile
            return (
                profile.cost_to_seconds(
                    rows * profile.seq_scan_cost_per_row
                ),
                0 if db == prefer else 1,
                db,
            )

        return min(healthy, key=scan_cost)

    def _available(self, db: str) -> bool:
        connector = self._connectors.get(db)
        return connector is None or connector.is_available()

    # -- Rule 4 ---------------------------------------------------------------

    def _candidate_dbs(self, left_db: str, right_db: str) -> List[str]:
        if self._prune_candidates:
            ordered = [left_db, right_db]
        else:
            # Unpruned search space: any DBMS may host the operator.
            ordered = [left_db, right_db]
            ordered.extend(
                name for name in self._connectors if name not in ordered
            )
        # Degradation awareness: an engine that is down or cut off from
        # the middleware at optimization time cannot host an operator —
        # constrain A and plan around it (§IV-B2).
        ordered = [name for name in ordered if self._available(name)]
        # Topology constraint (§IV-B2): every moving input must be able
        # to reach the candidate over the (possibly restricted) network.
        reachable = [
            target
            for target in ordered
            if all(
                source == target
                or self._network.is_reachable(
                    self._connectors[source].node,
                    self._connectors[target].node,
                )
                for source in (left_db, right_db)
            )
        ]
        if not reachable:
            raise OptimizerError(
                f"no reachable placement for a join over {left_db!r} and "
                f"{right_db!r} under the current network topology and "
                "engine availability"
            )
        return reachable

    def _movement_options(self) -> Tuple[Movement, ...]:
        if self._movement_policy == "implicit":
            return (Movement.IMPLICIT,)
        if self._movement_policy == "explicit":
            return (Movement.EXPLICIT,)
        return (Movement.IMPLICIT, Movement.EXPLICIT)

    def _rule4(
        self,
        join,  # binary operator: algebra.Join or algebra.Union
        left_db: str,
        right_db: str,
        annotation: Annotation,
    ) -> str:
        left_rows = _rows(join.left)
        right_rows = _rows(join.right)
        out_rows = _rows(join)

        evaluated: List[Tuple[str, str, float]] = []
        best: Optional[
            Tuple[float, str, Movement, Movement]
        ] = None

        for target_db in self._candidate_dbs(left_db, right_db):
            connector = self._connectors[target_db]
            # Each input either sits on the target already (implicit,
            # free) or must move with a chosen movement type.
            left_options = self._input_options(
                join.left, left_rows, left_db, target_db
            )
            right_options = self._input_options(
                join.right, right_rows, right_db, target_db
            )
            for left_move, left_move_cost in left_options:
                for right_move, right_move_cost in right_options:
                    moved_rows = 0.0
                    local_rows = 0.0
                    materialized = True
                    if left_db != target_db:
                        moved_rows += left_rows
                        materialized = (
                            materialized
                            and left_move is Movement.EXPLICIT
                        )
                    else:
                        local_rows += left_rows
                    if right_db != target_db:
                        moved_rows += right_rows
                        materialized = (
                            materialized
                            and right_move is Movement.EXPLICIT
                        )
                    else:
                        local_rows += right_rows
                    if local_rows == 0.0:
                        # Third-DBMS placement: treat the larger moved
                        # input as the local build side surrogate.
                        local_rows = max(left_rows, right_rows)
                        moved_rows = min(left_rows, right_rows)
                    exec_seconds = connector.estimate_join_cost(
                        local_rows=local_rows,
                        moved_rows=moved_rows,
                        output_rows=out_rows,
                        materialized=materialized,
                    )
                    annotation.consultations += 1
                    total = exec_seconds + left_move_cost + right_move_cost
                    evaluated.append(
                        (
                            target_db,
                            f"l:{left_move.value} r:{right_move.value}",
                            total,
                        )
                    )
                    if best is None or total < best[0]:
                        best = (total, target_db, left_move, right_move)

        assert best is not None
        _, chosen_db, left_move, right_move = best
        annotation.bind_node(join, chosen_db)
        annotation.bind_edge(join.left, join, left_move)
        annotation.bind_edge(join.right, join, right_move)
        annotation.decisions[id(join)] = PlacementDecision(
            chosen_db=chosen_db,
            left_movement=left_move,
            right_movement=right_move,
            costs=tuple(evaluated),
        )
        return chosen_db

    def _input_options(
        self,
        node: algebra.LogicalPlan,
        rows: float,
        source_db: str,
        target_db: str,
    ) -> List[Tuple[Movement, float]]:
        """(movement, move-cost) alternatives for one join input."""
        if source_db == target_db:
            return [(Movement.IMPLICIT, 0.0)]
        move_seconds = self._move_seconds(source_db, target_db, node, rows)
        return [
            (movement, move_seconds)
            for movement in self._movement_options()
        ]

    def _move_seconds(
        self,
        source_db: str,
        target_db: str,
        moving_node: algebra.LogicalPlan,
        moving_rows: float,
    ) -> float:
        source = self._connectors[source_db]
        target = self._connectors[target_db]
        protocol = protocol_between(
            source.profile.name, target.profile.name
        )
        payload = int(
            moving_rows
            * moving_node.schema.row_width()
            * PROTOCOL_FACTORS[protocol]
        )
        return self._network.transfer_time(source.node, target.node, payload)


def _rows(node: algebra.LogicalPlan) -> float:
    if node.estimated_rows is None:
        raise OptimizerError(
            "logical plan is missing cardinality annotations; run the "
            "Phase-1 optimizer first"
        )
    return max(node.estimated_rows, 1.0)
