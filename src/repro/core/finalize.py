"""Phase 3 — plan finalization (§IV-B3).

Groups maximal runs of same-annotation operators into tasks: a modified
depth-first post-order traversal compares each node's annotation to its
parent's, and at every boundary cuts the subtree into its own task,
inserting a *placeholder scan* (the paper's dummy "?" operator) in the
consumer.  Minimizing the number of tasks keeps delegation round-trips
low and gives the underlying DBMSes maximal local-optimization freedom.

When a producing task's output would expose duplicate column names
(impossible for a view), the finalizer interposes a normalization
projection and rewrites the consumer's expressions accordingly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.annotate import Annotation
from repro.core.plan import DelegationPlan, Movement, Task
from repro.errors import OptimizerError
from repro.relational import algebra
from repro.relational.builder import rebuild_expression, unique_names
from repro.sql import ast

#: (relation_lower | None, old_name_lower) -> new name
RenameMap = Dict[Tuple[Optional[str], str], str]


class PlanFinalizer:
    """Builds the delegation plan from an annotated logical plan."""

    def finalize(
        self, plan: algebra.LogicalPlan, annotation: Annotation
    ) -> DelegationPlan:
        dplan = DelegationPlan()
        root_task = self._make_task(plan, annotation, dplan)
        dplan.set_root(root_task)
        return dplan

    # -- task construction ----------------------------------------------------

    def _make_task(
        self,
        root: algebra.LogicalPlan,
        annotation: Annotation,
        dplan: DelegationPlan,
    ) -> Task:
        db = annotation.db_of(root)
        deps: List[Tuple[Task, Movement, str]] = []
        expr, _ = self._rebuild(root, db, annotation, dplan, deps)
        task = dplan.new_task(
            db, expr, root.estimated_rows or 0.0, source_expr=root
        )
        for child_task, movement, placeholder in deps:
            dplan.add_edge(child_task, task, movement, placeholder)
        return task

    def _rebuild(
        self,
        node: algebra.LogicalPlan,
        db: str,
        annotation: Annotation,
        dplan: DelegationPlan,
        deps: List[Tuple[Task, Movement, str]],
    ) -> Tuple[algebra.LogicalPlan, RenameMap]:
        if isinstance(node, algebra.Scan):
            return node, {}

        new_children: List[algebra.LogicalPlan] = []
        renames: RenameMap = {}
        for child in node.children():
            if annotation.db_of(child) == db:
                rebuilt, child_renames = self._rebuild(
                    child, db, annotation, dplan, deps
                )
                new_children.append(rebuilt)
                renames.update(child_renames)
            else:
                placeholder, child_renames = self._cut(
                    child, node, annotation, dplan, deps
                )
                new_children.append(placeholder)
                renames.update(child_renames)

        if renames:
            rebuilt = _rebuild_with_renames(node, new_children, renames)
        else:
            rebuilt = node.with_children(new_children)
        if isinstance(rebuilt, (algebra.Project, algebra.Aggregate)):
            # Outputs are (re)named by the node itself; renames below it
            # are fully absorbed here.
            renames = {}
        return rebuilt, renames

    def _cut(
        self,
        child: algebra.LogicalPlan,
        parent: algebra.LogicalPlan,
        annotation: Annotation,
        dplan: DelegationPlan,
        deps: List[Tuple[Task, Movement, str]],
    ) -> Tuple[algebra.Scan, RenameMap]:
        """Cut ``child`` into its own task and return its placeholder."""
        child_task = self._make_task(child, annotation, dplan)

        renames: RenameMap = {}
        schema = child_task.expr.schema
        names = schema.names
        lowered = [name.lower() for name in names]
        if len(set(lowered)) != len(lowered):
            fresh = unique_names(names)
            items = [
                algebra.ProjectItem(
                    ast.ColumnRef(field.name, field.relation), new_name
                )
                for field, new_name in zip(schema, fresh)
            ]
            child_task.expr = algebra.Project(child_task.expr, items)
            for field, new_name in zip(schema, fresh):
                if new_name != field.name:
                    relation = (
                        field.relation.lower() if field.relation else None
                    )
                    renames[(relation, field.name.lower())] = new_name
            schema = child_task.expr.schema

        binding = f"xin_{child_task.task_id}"
        placeholder = algebra.Scan(
            table=f"__placeholder_{child_task.task_id}",
            binding=binding,
            schema=schema,
            source_db=None,
            placeholder=True,
            requalify=False,
        )
        placeholder.estimated_rows = child.estimated_rows

        movement = annotation.move_of(child, parent)
        deps.append((child_task, movement, binding))
        return placeholder, renames


# ---------------------------------------------------------------------------
# expression rename rewriting
# ---------------------------------------------------------------------------


def _rename_expr(
    expr: ast.Expression, renames: RenameMap
) -> ast.Expression:
    def replace(node: ast.Expression):
        if isinstance(node, ast.ColumnRef):
            relation = node.table.lower() if node.table else None
            new_name = renames.get((relation, node.name.lower()))
            if new_name is not None:
                return ast.ColumnRef(new_name, node.table)
        return None

    return rebuild_expression(expr, replace)


def _rebuild_with_renames(
    node: algebra.LogicalPlan,
    children: List[algebra.LogicalPlan],
    renames: RenameMap,
) -> algebra.LogicalPlan:
    """Reconstruct ``node`` over ``children`` with its expressions
    rewritten under ``renames`` (constructors type-check eagerly, so the
    rewrite must happen during reconstruction)."""
    if isinstance(node, algebra.Filter):
        (child,) = children
        return algebra.Filter(child, _rename_expr(node.predicate, renames))
    if isinstance(node, algebra.Project):
        (child,) = children
        items = [
            algebra.ProjectItem(_rename_expr(item.expr, renames), item.name)
            for item in node.items
        ]
        return algebra.Project(child, items)
    if isinstance(node, algebra.Join):
        left, right = children
        condition = (
            _rename_expr(node.condition, renames)
            if node.condition is not None
            else None
        )
        return algebra.Join(left, right, condition, node.kind)
    if isinstance(node, algebra.Aggregate):
        (child,) = children
        keys = [
            algebra.ProjectItem(_rename_expr(key.expr, renames), key.name)
            for key in node.keys
        ]
        aggregates = [
            algebra.AggregateSpec(
                spec.func,
                _rename_expr(spec.arg, renames)
                if spec.arg is not None
                else None,
                spec.name,
                spec.distinct,
            )
            for spec in node.aggregates
        ]
        return algebra.Aggregate(child, keys, aggregates)
    if isinstance(node, algebra.Sort):
        (child,) = children
        keys = [
            algebra.SortKey(_rename_expr(key.expr, renames), key.ascending)
            for key in node.keys
        ]
        return algebra.Sort(child, keys)
    if isinstance(node, algebra.Union):
        left, right = children
        return algebra.Union(
            left,
            right,
            schema=node.schema if node.explicit_schema else None,
        )
    if isinstance(node, (algebra.Limit, algebra.Distinct, algebra.Alias)):
        return node.with_children(children)
    raise OptimizerError(
        f"cannot rewrite expressions of {type(node).__name__}"
    )
