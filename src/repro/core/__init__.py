"""XDB: the in-situ cross-database query processing middleware.

The package implements the paper's two core components:

* the **cross-database optimizer** — logical optimization
  (:mod:`repro.core.logical`), plan annotation with Rules 1–4 and the
  consulting cost model (:mod:`repro.core.annotate`), and plan
  finalization into tasks (:mod:`repro.core.finalize`);
* the **delegation engine** (:mod:`repro.core.delegate`) — Algorithm 1,
  which rewrites a delegation plan into dialect-specific SQL/MED DDL and
  returns the *XDB query* that triggers the decentralized execution.

:class:`repro.core.client.XDB` is the user-facing facade gluing the
phases together and reporting the per-phase breakdown of §VI-E.
"""

from repro.core.client import PreparedQuery, XDB, XDBReport
from repro.core.plan import DelegationPlan, Movement, Task

__all__ = [
    "DelegationPlan",
    "Movement",
    "PreparedQuery",
    "Task",
    "XDB",
    "XDBReport",
]
