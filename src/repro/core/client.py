"""The XDB facade: submit a cross-database query, get results + metrics.

Mirrors the paper's client flow (Fig. 4b): the middleware optimizes and
delegates, then hands the client an *XDB query* which the client runs on
the root DBMS — XDB itself never touches the data path.  The report
carries the §VI-E phase breakdown (prep / lopt / ann / exec), the
delegation plan with per-edge movement statistics (Table IV), and the
transfer ledger slice for the data-movement experiments (Fig. 14).

Phase times combine real middleware CPU time with simulated network
time for every control message, consultation, and data transfer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.annotate import Annotation, PlanAnnotator
from repro.core.catalog import GlobalCatalog
from repro.core.delegate import DelegationEngine, DeployedQuery
from repro.core.finalize import PlanFinalizer
from repro.core.logical import LogicalOptimizer
from repro.core.plan import DelegationPlan
from repro.core.timing import (
    ScheduleResult,
    attribute_edge_stats,
    simulate_schedule,
)
from repro.engine.result import Result
from repro.errors import OptimizerError
from repro.federation.deployment import Deployment
from repro.net.metrics import (
    ResilienceSummary,
    TransferSummary,
    snapshot_resilience,
    summarize,
    summarize_resilience,
)
from repro.sql import ast
from repro.sql.parser import parse_statement


@dataclass
class XDBReport:
    """Everything a query submission produced."""

    result: Result
    plan: DelegationPlan
    deployed: DeployedQuery
    #: None for re-executions of a prepared query (no annotation phase)
    annotation: Optional[Annotation]
    schedule: ScheduleResult
    #: simulated seconds per phase: prep / lopt / ann / exec — phase
    #: times include any simulated retry backoff spent in that phase
    phases: Dict[str, float] = field(default_factory=dict)
    transfers: Optional[TransferSummary] = None
    consultations: int = 0
    #: per-connector retry/failure counters for this submission
    resilience: Optional[ResilienceSummary] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def execution_seconds(self) -> float:
        return self.phases.get("exec", 0.0)

    @property
    def optimization_seconds(self) -> float:
        return (
            self.phases.get("prep", 0.0)
            + self.phases.get("lopt", 0.0)
            + self.phases.get("ann", 0.0)
        )

    def describe(self) -> str:
        lines = [
            f"delegation plan ({self.plan.task_count()} tasks, "
            f"root @ {self.plan.root.annotation}):",
            self.plan.describe(),
            "phases: "
            + ", ".join(
                f"{name}={seconds:.3f}s"
                for name, seconds in self.phases.items()
            ),
        ]
        if self.transfers is not None:
            lines.append(
                f"data moved: {self.transfers.total_megabytes:.3f} MB in "
                f"{self.transfers.transfer_count} transfers"
            )
        if self.resilience is not None and self.resilience.degraded:
            lines.append(f"resilience: {self.resilience.describe()}")
        return "\n".join(lines)


class XDB:
    """The middleware: cross-database optimizer + delegation engine."""

    def __init__(
        self,
        deployment: Deployment,
        movement_policy: str = "cost",
        prune_candidates: bool = True,
        plan_shape: str = "left-deep",
    ):
        """Create the middleware over ``deployment``.

        The keyword arguments expose the optimizer's ablation knobs:
        ``movement_policy`` ("cost"/"implicit"/"explicit"),
        ``prune_candidates`` (Rule 4's two-candidate pruning), and
        ``plan_shape`` ("left-deep" per the paper, or "bushy" — the
        paper's future-work extension, §IV-B footnote 5).
        """
        self.deployment = deployment
        self.connectors = deployment.connectors
        self.catalog = GlobalCatalog(self.connectors)
        self.optimizer = LogicalOptimizer(self.catalog, plan_shape=plan_shape)
        self.annotator = PlanAnnotator(
            self.connectors,
            deployment.network,
            movement_policy=movement_policy,
            prune_candidates=prune_candidates,
        )
        self.finalizer = PlanFinalizer()
        self.delegator = DelegationEngine(self.connectors)
        self._metadata_fresh = False

    # -- public API --------------------------------------------------------------

    def submit(
        self,
        query: Union[str, ast.Select],
        cleanup: bool = True,
        refresh_metadata: bool = False,
    ) -> XDBReport:
        """Run a cross-database query end to end and report everything."""
        network = self.deployment.network
        ledger = network.log
        resilience_base = snapshot_resilience(self.connectors)

        # --- prep: parse + gather metadata through the connectors -------
        mark = len(ledger)
        backoff_mark = self._total_backoff()
        cpu_start = time.perf_counter()
        select = self._parse(query)
        if refresh_metadata or not self._metadata_fresh:
            self.catalog.refresh()
            self._metadata_fresh = True
        prep_seconds = self._phase_seconds(
            cpu_start, ledger, mark, backoff_mark
        )

        # --- lopt: logical optimization (pure middleware CPU) ------------
        mark = len(ledger)
        backoff_mark = self._total_backoff()
        cpu_start = time.perf_counter()
        logical_plan = self.optimizer.optimize(select)
        lopt_seconds = self._phase_seconds(
            cpu_start, ledger, mark, backoff_mark
        )

        # --- ann: plan annotation + finalization (consulting) ------------
        mark = len(ledger)
        backoff_mark = self._total_backoff()
        cpu_start = time.perf_counter()
        annotation = self.annotator.annotate(logical_plan)
        dplan = self.finalizer.finalize(logical_plan, annotation)
        ann_seconds = self._phase_seconds(
            cpu_start, ledger, mark, backoff_mark
        )

        # --- exec: delegation DDL + decentralized execution ---------------
        mark = len(ledger)
        backoff_mark = self._total_backoff()
        cpu_start = time.perf_counter()
        deployed = self.delegator.delegate(dplan)
        root_connector = self.connectors[deployed.root_db]
        result = root_connector.run_query(
            deployed.xdb_query, self.deployment.client_node
        )
        exec_window = ledger[mark:]
        attribute_edge_stats(deployed, exec_window)
        schedule = simulate_schedule(
            deployed,
            self.connectors,
            network,
            self.deployment.client_node,
            result_bytes=result.byte_size(),
        )
        control_seconds = sum(
            record.seconds
            for record in exec_window
            if record.tag in ("delegation", "control")
        )
        del cpu_start  # middleware CPU during exec is not on the critical
        # path (the DBMSes run decentrally); control messages are, and
        # so is simulated retry backoff spent on the DDL cascade.
        exec_seconds = (
            schedule.total_seconds
            + control_seconds
            + (self._total_backoff() - backoff_mark)
        )
        transfers = summarize(exec_window)

        if cleanup:
            deployed.cleanup()

        return XDBReport(
            result=result,
            plan=dplan,
            deployed=deployed,
            annotation=annotation,
            schedule=schedule,
            phases={
                "prep": prep_seconds,
                "lopt": lopt_seconds,
                "ann": ann_seconds,
                "exec": exec_seconds,
            },
            transfers=transfers,
            consultations=annotation.consultations,
            resilience=summarize_resilience(self.connectors, resilience_base),
        )

    def explain(self, query: Union[str, ast.Select]) -> str:
        """Produce the delegation plan (Table IV style) without executing."""
        select = self._parse(query)
        if not self._metadata_fresh:
            self.catalog.refresh()
            self._metadata_fresh = True
        logical_plan = self.optimizer.optimize(select)
        annotation = self.annotator.annotate(logical_plan)
        dplan = self.finalizer.finalize(logical_plan, annotation)
        return dplan.describe()

    def plan_query(
        self, query: Union[str, ast.Select]
    ) -> DelegationPlan:
        """Optimize + annotate + finalize, returning the delegation plan."""
        select = self._parse(query)
        if not self._metadata_fresh:
            self.catalog.refresh()
            self._metadata_fresh = True
        logical_plan = self.optimizer.optimize(select)
        annotation = self.annotator.annotate(logical_plan)
        return self.finalizer.finalize(logical_plan, annotation)

    def prepare(self, query: Union[str, ast.Select]) -> "PreparedQuery":
        """Optimize + delegate once; execute many times on fresh data.

        The delegation cascade stays deployed: re-executions skip the
        optimizer and delegation phases entirely, re-materialize the
        explicit edges, and re-run the XDB query — since every implicit
        edge is a view, results always reflect the current base data
        (the paper's "ad-hoc queries on fresh data" motivation without
        re-planning).
        """
        select = self._parse(query)
        if not self._metadata_fresh:
            self.catalog.refresh()
            self._metadata_fresh = True
        logical_plan = self.optimizer.optimize(select)
        annotation = self.annotator.annotate(logical_plan)
        dplan = self.finalizer.finalize(logical_plan, annotation)
        deployed = self.delegator.delegate(dplan)
        return PreparedQuery(self, deployed)

    def invalidate_metadata(self) -> None:
        self._metadata_fresh = False

    def warm_metadata(self) -> None:
        """Gather global-catalog metadata ahead of time (benchmarks)."""
        self.catalog.refresh()
        self._metadata_fresh = True

    # -- internals ------------------------------------------------------------------

    @staticmethod
    def _parse(query: Union[str, ast.Select]) -> ast.Statement:
        if isinstance(query, ast.QUERY_STATEMENTS):
            return query
        statement = parse_statement(query)
        if not isinstance(statement, ast.QUERY_STATEMENTS):
            raise OptimizerError(
                "XDB accepts analytical SELECT / UNION ALL queries only"
            )
        return statement

    def _total_backoff(self) -> float:
        """Simulated retry-backoff seconds accrued across connectors."""
        return sum(
            connector.backoff_seconds
            for connector in self.connectors.values()
        )

    def _phase_seconds(
        self, cpu_start: float, ledger, mark: int, backoff_mark: float
    ) -> float:
        """Real middleware CPU plus simulated network and backoff time."""
        cpu = time.perf_counter() - cpu_start
        network = sum(record.seconds for record in ledger[mark:])
        backoff = self._total_backoff() - backoff_mark
        return cpu + network + backoff


class PreparedQuery:
    """A delegated query kept deployed for repeated execution.

    Use as a context manager (or call :meth:`close`) so the short-lived
    views / foreign tables are dropped from the DBMSes afterwards.
    """

    def __init__(self, xdb: XDB, deployed: DeployedQuery):
        self._xdb = xdb
        self.deployed = deployed
        self.executions = 0
        self._closed = False

    @property
    def plan(self) -> DelegationPlan:
        return self.deployed.plan

    def execute(self) -> XDBReport:
        """Run the deployed XDB query against the current base data."""
        if self._closed:
            raise OptimizerError("prepared query is closed")
        network = self._xdb.deployment.network
        ledger = network.log
        resilience_base = snapshot_resilience(self._xdb.connectors)
        mark = len(ledger)
        backoff_mark = self._xdb._total_backoff()
        cpu_start = time.perf_counter()

        if self.executions > 0:
            # First execution already materialized during delegation.
            self.deployed.refresh_materializations()
        root_connector = self._xdb.connectors[self.deployed.root_db]
        result = root_connector.run_query(
            self.deployed.xdb_query, self._xdb.deployment.client_node
        )
        self.executions += 1

        exec_window = ledger[mark:]
        attribute_edge_stats(self.deployed, exec_window)
        schedule = simulate_schedule(
            self.deployed,
            self._xdb.connectors,
            network,
            self._xdb.deployment.client_node,
            result_bytes=result.byte_size(),
        )
        control_seconds = sum(
            record.seconds
            for record in exec_window
            if record.tag in ("delegation", "control")
        )
        del cpu_start
        backoff_seconds = self._xdb._total_backoff() - backoff_mark
        return XDBReport(
            result=result,
            plan=self.deployed.plan,
            deployed=self.deployed,
            annotation=None,
            schedule=schedule,
            phases={
                "prep": 0.0,
                "lopt": 0.0,
                "ann": 0.0,
                "exec": (
                    schedule.total_seconds
                    + control_seconds
                    + backoff_seconds
                ),
            },
            transfers=summarize(exec_window),
            resilience=summarize_resilience(
                self._xdb.connectors, resilience_base
            ),
        )

    def close(self) -> None:
        """Drop every deployed object."""
        if not self._closed:
            self.deployed.cleanup()
            self._closed = True

    def __enter__(self) -> "PreparedQuery":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
