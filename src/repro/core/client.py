"""The XDB facade: submit a cross-database query, get results + metrics.

Mirrors the paper's client flow (Fig. 4b): the middleware optimizes and
delegates, then hands the client an *XDB query* which the client runs on
the root DBMS — XDB itself never touches the data path.  The report
carries the §VI-E phase breakdown (prep / lopt / ann / exec), the
delegation plan with per-edge movement statistics (Table IV), and the
transfer summary for the data-movement experiments (Fig. 14).

Every submission runs inside one :class:`~repro.obs.context.
QueryContext`: the phase breakdown, transfer summary, resilience
counters, and recovery report are all *views* over its span tree and
context-scoped metrics — phase times combine real middleware CPU
(span wall time) with the simulated network and retry-backoff seconds
attributed to the phase's subtree (span sim time).  Nothing is read
from global counters or ledger index marks, so concurrent or repeated
submissions cannot leak observations into each other.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.annotate import Annotation, PlanAnnotator
from repro.core.catalog import GlobalCatalog
from repro.core.delegate import DelegationEngine, DeployedQuery
from repro.core.finalize import PlanFinalizer
from repro.core.logical import LogicalOptimizer
from repro.core.plan import DelegationPlan
from repro.core.timing import (
    ScheduleResult,
    attribute_edge_stats,
    simulate_schedule,
)
from repro.drift.ledger import ObjectLedger
from repro.drift.reaper import OrphanReaper, ReapReport
from repro.engine.result import Result
from repro.errors import (
    BindError,
    CatalogError,
    CircuitOpenError,
    DeadlineExceeded,
    DelegationError,
    EngineUnavailableError,
    OptimizerError,
    OverloadError,
    ReproError,
    SchemaDriftError,
    TypeCheckError,
)
from repro.federation.deployment import Deployment
from repro.health import BreakerEvent
from repro.net.metrics import ResilienceSummary, TransferSummary
from repro.obs.clock import wall_now
from repro.obs.context import QueryContext
from repro.qos import PRIORITY_NORMAL, QoSPolicy, QoSReport
from repro.sql import ast
from repro.sql.parser import parse_statement

#: transfer tags on the execution critical path for prepared
#: re-executions (no annotation phase, so no consult/probe traffic)
_PREPARED_CONTROL_TAGS = ("delegation", "control")


@dataclass
class RecoveryReport:
    """What the self-healing layer did for one submission.

    Present on every report; :attr:`repaired` distinguishes the common
    untouched case from submissions the plan-repair loop had to
    re-annotate around an engine outage.
    """

    #: how many times the repair loop re-planned (0 = no repair needed)
    repair_attempts: int = 0
    #: DBMSes reported to the health registry as down, in repair order
    repaired_dbs: List[str] = field(default_factory=list)
    #: simulated + CPU seconds spent from first failure to repaired run
    repair_seconds: float = 0.0
    #: circuit-breaker transitions recorded during this submission
    breaker_transitions: List[BreakerEvent] = field(default_factory=list)
    #: where each base table's scan ran in the first finalized plan
    #: (table → DBMS) — keyed by table, not task, because a repaired
    #: plan may group operators into different tasks entirely
    placement_before: Dict[str, str] = field(default_factory=dict)
    #: scan placement of the plan that actually produced the result
    placement: Dict[str, str] = field(default_factory=dict)
    #: schema drifts absorbed (re-introspect + replan) this submission
    drift_events: int = 0
    #: (db, table) pairs whose drift was absorbed, in detection order
    drifted_tables: List[Tuple[str, str]] = field(default_factory=list)
    #: (db, table) pairs quarantined as unreconcilable this submission
    quarantined: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def repaired(self) -> bool:
        return self.repair_attempts > 0

    @property
    def drifted(self) -> bool:
        return self.drift_events > 0

    def placement_diff(self) -> Dict[str, Tuple[str, str]]:
        """Tables whose scan moved: table → (old DBMS, new DBMS)."""
        diff: Dict[str, Tuple[str, str]] = {}
        for table, db in self.placement.items():
            before = self.placement_before.get(table)
            if before is not None and before != db:
                diff[table] = (before, db)
        return diff

    def describe(self) -> str:
        if not self.repaired and not self.drifted:
            return "no repair needed"
        parts = []
        if self.repaired:
            moved = ", ".join(
                f"{table}: {old}→{new}"
                for table, (old, new) in sorted(
                    self.placement_diff().items()
                )
            )
            parts.append(
                f"{self.repair_attempts} repair(s) around "
                f"{sorted(set(self.repaired_dbs))} in "
                f"{self.repair_seconds:.3f}s"
                + (f"; moved {moved}" if moved else "")
            )
        if self.drifted:
            drifted = ", ".join(
                f"{db}.{table}" for db, table in self.drifted_tables
            )
            line = f"{self.drift_events} drift(s) absorbed on {drifted}"
            if not self.repaired:
                line += f" in {self.repair_seconds:.3f}s"
            if self.quarantined:
                line += "; quarantined " + ", ".join(
                    f"{db}.{table}" for db, table in self.quarantined
                )
            parts.append(line)
        return "; ".join(parts)


@dataclass
class XDBReport:
    """Everything a query submission produced."""

    result: Result
    plan: DelegationPlan
    deployed: DeployedQuery
    #: None for re-executions of a prepared query (no annotation phase)
    annotation: Optional[Annotation]
    schedule: ScheduleResult
    #: simulated seconds per phase: prep / lopt / ann / exec — phase
    #: times include any simulated retry backoff spent in that phase
    phases: Dict[str, float] = field(default_factory=dict)
    transfers: Optional[TransferSummary] = None
    consultations: int = 0
    #: per-connector retry/failure counters for this submission
    resilience: Optional[ResilienceSummary] = None
    #: plan-repair activity (None for prepared-query re-executions,
    #: which re-run a frozen deployment instead of re-planning)
    recovery: Optional[RecoveryReport] = None
    #: the observation context the submission ran under: span tree,
    #: context-scoped metrics, attributed transfers, trace exports
    context: Optional[QueryContext] = None
    #: QoS receipt — admission wait, deadline spend, staleness — when
    #: the submission carried a :class:`~repro.qos.QoSPolicy`
    qos: Optional[QoSReport] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def execution_seconds(self) -> float:
        return self.phases.get("exec", 0.0)

    @property
    def optimization_seconds(self) -> float:
        return (
            self.phases.get("prep", 0.0)
            + self.phases.get("lopt", 0.0)
            + self.phases.get("ann", 0.0)
        )

    def describe(self) -> str:
        lines = [
            f"delegation plan ({self.plan.task_count()} tasks, "
            f"root @ {self.plan.root.annotation}):",
            self.plan.describe(),
            "phases: "
            + ", ".join(
                f"{name}={seconds:.3f}s"
                for name, seconds in self.phases.items()
            ),
        ]
        if self.transfers is not None:
            lines.append(
                f"data moved: {self.transfers.total_megabytes:.3f} MB in "
                f"{self.transfers.transfer_count} transfers"
            )
        if self.resilience is not None and self.resilience.degraded:
            lines.append(f"resilience: {self.resilience.describe()}")
        if self.recovery is not None and self.recovery.repaired:
            lines.append(f"recovery: {self.recovery.describe()}")
        if self.qos is not None:
            lines.append(f"qos: {self.qos.describe()}")
        return "\n".join(lines)

    def explain_analyze(self) -> str:
        """EXPLAIN ANALYZE-style span tree for this submission."""
        if self.context is None:
            return "no observation context recorded"
        header = "phases: " + ", ".join(
            f"{name}={seconds:.3f}s" for name, seconds in self.phases.items()
        )
        return header + "\n" + self.context.explain_tree()

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event JSON for this submission's span tree."""
        if self.context is None:
            raise OptimizerError("no observation context recorded")
        return self.context.to_chrome_trace()


def _slots(deployment: Deployment) -> Optional[int]:
    """Per-engine task slots for the schedule simulator.

    A single-worker deployment keeps the legacy unbounded-overlap
    semantics (None); only explicit multi-worker engines cap how many
    delegated tasks one engine advances concurrently.
    """
    workers = deployment.parallel_workers
    return workers if workers > 1 else None


class XDB:
    """The middleware: cross-database optimizer + delegation engine."""

    def __init__(
        self,
        deployment: Deployment,
        movement_policy: str = "cost",
        prune_candidates: bool = True,
        plan_shape: str = "left-deep",
        repair_budget: int = 2,
        ddl_namespace: str = "",
        ledger_path: Optional[str] = None,
    ):
        """Create the middleware over ``deployment``.

        The keyword arguments expose the optimizer's ablation knobs:
        ``movement_policy`` ("cost"/"implicit"/"explicit"),
        ``prune_candidates`` (Rule 4's two-candidate pruning), and
        ``plan_shape`` ("left-deep" per the paper, or "bushy" — the
        paper's future-work extension, §IV-B footnote 5).
        ``repair_budget`` bounds the self-healing plan-repair loop:
        how many times one submission may re-plan around an engine
        outage before the failure propagates (0 disables repair).
        ``ddl_namespace`` prefixes every short-lived DDL object this
        client creates — concurrent XDB instances sharing one
        federation give themselves distinct namespaces so their
        ``xf_/xm_/xv_`` objects cannot collide.  ``ledger_path``
        persists the delegated-object ledger as JSON, so a restarted
        client can still reap what a crashed one leaked.
        """
        self.deployment = deployment
        self.repair_budget = repair_budget
        self.connectors = deployment.connectors
        self.catalog = GlobalCatalog(
            self.connectors,
            partition_specs=deployment.partition_specs,
        )
        self.optimizer = LogicalOptimizer(self.catalog, plan_shape=plan_shape)
        self.annotator = PlanAnnotator(
            self.connectors,
            deployment.network,
            movement_policy=movement_policy,
            prune_candidates=prune_candidates,
            catalog=self.catalog,
        )
        self.finalizer = PlanFinalizer()
        #: durable record of every delegated DDL object (drift PR);
        #: feeds the cumulative leak accounting and the orphan reaper
        self.ledger = ObjectLedger(namespace=ddl_namespace, path=ledger_path)
        self.delegator = DelegationEngine(
            self.connectors, namespace=ddl_namespace, ledger=self.ledger
        )
        #: epoch-fenced reaper: reconciles engine-held ``xf_/xm_/xv_``
        #: objects against the ledger, dropping only retired epochs
        self.reaper = OrphanReaper(
            self.ledger, self.connectors, health=deployment.health
        )
        # Engine recovery (breaker half-open → closed) marks the engine
        # pending; the *next* submission sweeps it — sweeping inside the
        # guarded call path would recurse into the connectors.
        deployment.health.add_recovery_listener(self.reaper.note_recovery)
        #: live PreparedQuery handles, so drift recovery can invalidate
        #: prepared plans that scan a re-introspected table
        self._prepared: "weakref.WeakSet[PreparedQuery]" = weakref.WeakSet()
        self._metadata_fresh = False

    # -- public API --------------------------------------------------------------

    def submit(
        self,
        query: Union[str, ast.Select],
        cleanup: bool = True,
        refresh_metadata: bool = False,
        qos: Optional[QoSPolicy] = None,
    ) -> XDBReport:
        """Run a cross-database query end to end and report everything.

        Self-healing: when a DBMS turns out to be unavailable during
        annotation-time consultation, delegation, or execution, the
        outage is reported to the deployment's health registry (the
        breaker trips, so subsequent calls fail fast), any partially
        deployed objects are cleaned up best-effort, and the cached
        logical plan is re-annotated — replicated tables route to a
        surviving holder — then re-delegated and re-executed.  The loop
        is bounded by ``repair_budget``; unrepairable outages (the only
        holder of a table is down) propagate immediately.

        QoS: with a :class:`~repro.qos.QoSPolicy` the submission holds
        one admission token per engine its plan touches for the whole
        execution phase (queueing or shedding under overload, by
        priority), draws every connector call, retry, backoff, and
        queue wait from one per-query :class:`~repro.qos.Deadline`
        budget, and — should that budget expire mid-delegation — rolls
        the in-flight DDL back under the deadline's grace budget before
        raising a structured :class:`~repro.errors.DeadlineExceeded`.
        """
        # Engines that recovered since the last submission get their
        # deferred orphan sweep now, outside the query's context (and
        # never allowed to fail the query itself).
        try:
            self.reaper.sweep_pending()
        except ReproError:
            pass
        network = self.deployment.network
        health = self.deployment.health
        gate = self.deployment.workload_gate
        priority = qos.priority if qos is not None else PRIORITY_NORMAL
        recovery = RecoveryReport()
        budget = self.repair_budget
        label = query if isinstance(query, str) else "<ast>"
        ctx = QueryContext(label=label, qos=qos)
        with ctx:
            tracer = ctx.tracer

            # --- prep: parse + gather metadata through the connectors ---
            with tracer.span("prep", kind="phase") as prep_span:
                ctx.enter_phase("prep")
                with tracer.span("parse", kind="step"):
                    select = self._parse(query)
                if refresh_metadata or not self._metadata_fresh:
                    with tracer.span("catalog-refresh", kind="step"):
                        self.catalog.refresh()
                    self._metadata_fresh = True

            # --- lopt: logical optimization (pure middleware CPU) -------
            with tracer.span("lopt", kind="phase") as lopt_span:
                ctx.enter_phase("lopt")
                with tracer.span("optimize", kind="step"):
                    logical_plan = self.optimizer.optimize(select)

            # --- ann: plan annotation + finalization (consulting) -------
            with tracer.span("ann", kind="phase") as ann_span:
                ctx.enter_phase("ann")
                while True:
                    try:
                        with tracer.span("annotate", kind="step"):
                            annotation = self.annotator.annotate(
                                logical_plan
                            )
                        with tracer.span("finalize", kind="step"):
                            dplan = self.finalizer.finalize(
                                logical_plan, annotation
                            )
                        break
                    except EngineUnavailableError as exc:
                        db = self._unavailable_db(exc)
                        if db is None or budget <= 0:
                            raise
                        budget -= 1
                        recovery.repair_attempts += 1
                        recovery.repaired_dbs.append(db)
                        tracer.add_event("repair", db=db, phase="ann")
                        health.report_outage(
                            db, "annotation-time consultation failed"
                        )
                recovery.placement_before = self._placement(dplan)

            # --- exec: delegation DDL + decentralized execution ----------
            lease = None
            deployed = None
            try:
                with tracer.span("exec", kind="phase") as exec_span:
                    repair_start: Optional[Tuple[float, float]] = None
                    while True:
                        deployed = None
                        try:
                            if dplan is None:
                                # Re-plan around the outage: the annotator
                                # now sees the open breaker, so replicated
                                # tables land on a healthy holder and Rule 4
                                # drops the dead candidate.
                                with tracer.span("annotate", kind="step"):
                                    annotation = self.annotator.annotate(
                                        logical_plan
                                    )
                                with tracer.span("finalize", kind="step"):
                                    dplan = self.finalizer.finalize(
                                        logical_plan, annotation
                                    )
                            # Lazy drift verification: once per table
                            # per catalog epoch.  A refresh pre-marks
                            # everything it read, so the common case is
                            # an empty list — no span, no engine calls.
                            pending = self.catalog.unverified(
                                self._placement(dplan)
                            )
                            if pending:
                                with tracer.span("verify", kind="step"):
                                    for vdb, vtable in pending:
                                        self.catalog.verify_table(
                                            vdb, vtable
                                        )
                            engines = sorted(
                                {
                                    task.annotation
                                    for task in dplan.tasks.values()
                                }
                            )
                            if lease is not None and set(
                                lease.engines
                            ) != set(engines):
                                # The repaired plan routes around the
                                # outage onto a different engine set:
                                # swap the admission tokens to match.
                                lease.release()
                                lease = None
                            if lease is None:
                                ctx.enter_phase("admission")
                                with tracer.span("admit", kind="step"):
                                    lease = gate.acquire(
                                        engines,
                                        priority=priority,
                                        deadline=ctx.deadline,
                                    )
                                    ctx.record_admission(lease)
                            ctx.enter_phase("delegate")
                            with tracer.span("delegate", kind="step"):
                                deployed = self.delegator.delegate(dplan)
                            root_connector = self.connectors[
                                deployed.root_db
                            ]
                            ctx.enter_phase("execute")
                            with tracer.span("execute", kind="step"):
                                result = root_connector.run_query(
                                    deployed.xdb_query,
                                    self.deployment.client_node,
                                )
                            if ctx.deadline is not None:
                                # A result that lands after the deadline
                                # is a miss, not a success: cancel it.
                                ctx.deadline.check(
                                    "execute", detail="post-execution"
                                )
                            break
                        except SchemaDriftError as drift:
                            if budget <= 0:
                                raise
                            budget -= 1
                            if repair_start is None:
                                repair_start = (wall_now(), tracer.sim_now)
                            if deployed is not None:
                                try:
                                    deployed.cleanup()
                                except ReproError:
                                    pass
                            logical_plan = self._recover_drift(
                                select, drift, recovery, tracer
                            )
                            dplan = None
                        except (
                            EngineUnavailableError,
                            DelegationError,
                        ) as exc:
                            # A delegation failure whose cause chain is
                            # schema-shaped (bind/type/catalog) may be a
                            # drifted remote table rather than an
                            # outage: force-verify the placed tables
                            # and, if one drifted, take the drift
                            # recovery path instead of plan repair.
                            drift = self._sniff_drift(exc, dplan)
                            if drift is not None:
                                if budget <= 0:
                                    raise drift from exc
                                budget -= 1
                                if repair_start is None:
                                    repair_start = (
                                        wall_now(),
                                        tracer.sim_now,
                                    )
                                if deployed is not None:
                                    try:
                                        deployed.cleanup()
                                    except ReproError:
                                        pass
                                logical_plan = self._recover_drift(
                                    select, drift, recovery, tracer
                                )
                                dplan = None
                                continue
                            db = self._unavailable_db(exc)
                            if db is None or budget <= 0:
                                raise
                            budget -= 1
                            recovery.repair_attempts += 1
                            recovery.repaired_dbs.append(db)
                            if repair_start is None:
                                repair_start = (wall_now(), tracer.sim_now)
                            tracer.add_event("repair", db=db, phase="exec")
                            # Trip the breaker FIRST so the best-effort
                            # cleanup of the partial deployment fails fast
                            # on the dead engine instead of burning its
                            # retry budget per object.
                            health.report_outage(db, "execution failed")
                            if deployed is not None:
                                try:
                                    deployed.cleanup()
                                except ReproError:
                                    pass
                            dplan = None
                        except (
                            BindError,
                            TypeCheckError,
                            CatalogError,
                        ) as exc:
                            # The root XDB query can hit the drifted
                            # table directly (no DDL cascade to wrap
                            # the failure in a DelegationError): a raw
                            # bind/type/catalog error here gets the
                            # same sniff before propagating.
                            drift = self._sniff_drift(exc, dplan)
                            if drift is None or budget <= 0:
                                raise
                            budget -= 1
                            if repair_start is None:
                                repair_start = (wall_now(), tracer.sim_now)
                            if deployed is not None:
                                try:
                                    deployed.cleanup()
                                except ReproError:
                                    pass
                            logical_plan = self._recover_drift(
                                select, drift, recovery, tracer
                            )
                            dplan = None
                    if repair_start is not None:
                        repair_wall, repair_sim = repair_start
                        recovery.repair_seconds = (
                            (wall_now() - repair_wall)
                            + (tracer.sim_now - repair_sim)
                        )
                    recovery.placement = self._placement(dplan)
                    attribute_edge_stats(
                        deployed, exec_span.subtree_records()
                    )
                    with tracer.span("schedule", kind="step"):
                        schedule = simulate_schedule(
                            deployed,
                            self.connectors,
                            network,
                            self.deployment.client_node,
                            result_bytes=result.byte_size(),
                            worker_slots=_slots(self.deployment),
                        )

                # Middleware CPU during exec is not on the critical path
                # (the DBMSes run decentrally); control messages are, and
                # so are simulated retry backoff spent on the DDL cascade
                # and any repair-time re-consultations — all read off the
                # exec span's subtree.
                exec_seconds = (
                    schedule.total_seconds
                    + ctx.control_seconds(exec_span)
                    + ctx.backoff_in(exec_span)
                )
                transfers = ctx.transfer_summary(exec_span)
                recovery.breaker_transitions = list(ctx.breaker_events)

                # Cleanup runs outside the exec span (its drops are not
                # part of the execution window's transfer summary) but
                # still under the admission lease, and — with a deadline
                # — under the grace budget, so a query that *met* its
                # deadline cannot fail while tearing itself down.
                ctx.current_phase = "cleanup"
                if cleanup:
                    if ctx.deadline is not None:
                        with ctx.deadline.grace():
                            deployed.cleanup()
                    else:
                        deployed.cleanup()
            except DeadlineExceeded as exc:
                self._cancel_deployment(ctx, deployed, exc)
                raise
            finally:
                if lease is not None:
                    lease.release()

            qos_report = None
            if qos is not None:
                qos_report = QoSReport(
                    priority=priority,
                    deadline_seconds=qos.deadline_seconds,
                    deadline_remaining_seconds=(
                        ctx.deadline.remaining_seconds
                        if ctx.deadline is not None
                        else None
                    ),
                    admission_wait_seconds=ctx.admission_wait_seconds,
                    admission_sim_seconds=ctx.admission_sim_seconds,
                    admitted_engines=(
                        list(lease.engines) if lease is not None else []
                    ),
                )

            resilience = ctx.resilience_summary(self.connectors)
            resilience.leaked_objects = self.ledger.leaked_count()
            report = XDBReport(
                result=result,
                plan=dplan,
                deployed=deployed,
                annotation=annotation,
                schedule=schedule,
                phases={
                    "prep": ctx.phase_seconds(prep_span),
                    "lopt": ctx.phase_seconds(lopt_span),
                    "ann": ctx.phase_seconds(ann_span),
                    "exec": exec_seconds,
                },
                transfers=transfers,
                consultations=annotation.consultations,
                resilience=resilience,
                recovery=recovery,
                context=ctx,
                qos=qos_report,
            )
        return report

    def reap(self, dbs: Optional[List[str]] = None) -> ReapReport:
        """Reconcile engine-held delegated objects against the ledger.

        Sweeps every reachable engine (or just ``dbs``), dropping
        ``xf_/xm_/xv_`` objects from *retired* epochs — a live
        deployment's objects are fenced and never touched.  Engines
        that are down are skipped and re-swept automatically after
        their breaker closes (see the recovery listener).
        """
        return self.reaper.sweep(dbs)

    # -- drift recovery -------------------------------------------------------------

    def _recover_drift(
        self,
        select: ast.Statement,
        drift: SchemaDriftError,
        recovery: RecoveryReport,
        tracer,
    ):
        """Absorb one detected drift: re-introspect, invalidate, replan.

        Returns the fresh logical plan.  When replanning still fails —
        e.g. a drifted replica now diverges from its siblings, or the
        table vanished and only this holder had it — the table is
        quarantined (placement avoids it like a dead holder) and the
        replan is retried once; a second failure propagates.
        """
        recovery.drift_events += 1
        key = (drift.db, drift.table)
        if key not in recovery.drifted_tables:
            recovery.drifted_tables.append(key)
        tracer.add_event(
            "schema-drift",
            db=drift.db,
            table=drift.table,
            diff=drift.diff_summary(),
        )
        with tracer.span("reintrospect", kind="step"):
            adopted = self.catalog.reintrospect(drift.db, drift.table)
        self._invalidate_prepared(drift.db, drift.table)
        try:
            with tracer.span("optimize", kind="step"):
                return self.optimizer.optimize(select)
        except ReproError:
            if adopted is not None:
                self.catalog.quarantine(drift.db, drift.table)
            recovery.quarantined.append(key)
            tracer.add_event(
                "quarantine", db=drift.db, table=drift.table
            )
            try:
                with tracer.span("optimize", kind="step"):
                    return self.optimizer.optimize(select)
            except ReproError as replan_exc:
                # Even with the drifted holder out of the way the
                # query cannot bind (the table vanished everywhere,
                # or it referenced a now-renamed column): surface
                # the structured drift error, not the planner's.
                drift.quarantined = True
                raise drift from replan_exc

    def _sniff_drift(
        self, exc: BaseException, dplan: Optional[DelegationPlan]
    ) -> Optional[SchemaDriftError]:
        """Check whether a schema-shaped failure traces back to drift.

        Only failures whose cause chain contains a bind/type/catalog
        error are sniffed — transient giveups and outages never touch
        the fingerprint path, so their fault schedules are unchanged.
        The sniff force-verifies each placed table and returns the
        first drift found (None when the schemas all still match).
        """
        if dplan is None or not self._schema_shaped(exc):
            return None
        for table, db in sorted(self._placement(dplan).items()):
            try:
                self.catalog.verify_table(db, table, force=True)
            except SchemaDriftError as drift:
                return drift
            except ReproError:
                continue
        return None

    @staticmethod
    def _schema_shaped(exc: BaseException) -> bool:
        """Whether a failure's cause chain smells like schema drift."""
        seen = set()
        node: Optional[BaseException] = exc
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if isinstance(
                node, (BindError, TypeCheckError, CatalogError)
            ):
                return True
            node = node.__cause__ or node.__context__
        return False

    def _invalidate_prepared(self, db: str, table: str) -> None:
        """Mark prepared queries scanning ``db.table`` as stale."""
        for prepared in list(self._prepared):
            prepared._note_drift(db, table)

    @staticmethod
    def _cancel_deployment(
        ctx: QueryContext,
        deployed: Optional[DeployedQuery],
        exc: DeadlineExceeded,
    ) -> None:
        """Cooperative cancellation: tear down a deployed cascade after
        deadline expiry, under the grace budget, and fold the rollback
        accounting into the structured error.

        ``deployed`` is None when the expiry struck *inside* the
        delegation engine — that path already rolled itself back and
        stamped the error; here we only handle expiry after delegation
        completed (during execution or post-execution checks).
        """
        if deployed is None:
            return
        before = list(deployed.created_objects)
        try:
            if ctx.deadline is not None:
                with ctx.deadline.grace():
                    deployed.cleanup()
            else:
                deployed.cleanup()
        except ReproError:
            # cleanup() already kept the undropped objects queued;
            # the leak accounting below reads them off the deployment.
            pass
        remaining = list(deployed.created_objects)
        exc.rolled_back = list(exc.rolled_back) + [
            obj for obj in before if obj not in remaining
        ]
        exc.leaked = list(exc.leaked) + remaining
        ctx.tracer.add_event(
            "deadline-cancelled",
            phase=exc.phase,
            rolled_back=len(exc.rolled_back),
            leaked=len(exc.leaked),
        )

    def explain(self, query: Union[str, ast.Select]) -> str:
        """Produce the delegation plan (Table IV style) without executing."""
        select = self._parse(query)
        if not self._metadata_fresh:
            self.catalog.refresh()
            self._metadata_fresh = True
        logical_plan = self.optimizer.optimize(select)
        annotation = self.annotator.annotate(logical_plan)
        dplan = self.finalizer.finalize(logical_plan, annotation)
        return dplan.describe()

    def explain_analyze(
        self,
        query: Union[str, ast.Select],
        cleanup: bool = True,
        refresh_metadata: bool = False,
    ) -> str:
        """Run the query and render its observed span tree.

        The cross-database analogue of ``EXPLAIN ANALYZE``: submits the
        query, then prints the phase breakdown and every span (engine
        calls, DDL statements, operator cardinalities, schedule tasks)
        with its wall/simulated timings.
        """
        report = self.submit(
            query, cleanup=cleanup, refresh_metadata=refresh_metadata
        )
        return report.explain_analyze()

    def plan_query(
        self, query: Union[str, ast.Select]
    ) -> DelegationPlan:
        """Optimize + annotate + finalize, returning the delegation plan."""
        select = self._parse(query)
        if not self._metadata_fresh:
            self.catalog.refresh()
            self._metadata_fresh = True
        logical_plan = self.optimizer.optimize(select)
        annotation = self.annotator.annotate(logical_plan)
        return self.finalizer.finalize(logical_plan, annotation)

    def prepare(self, query: Union[str, ast.Select]) -> "PreparedQuery":
        """Optimize + delegate once; execute many times on fresh data.

        The delegation cascade stays deployed: re-executions skip the
        optimizer and delegation phases entirely, re-materialize the
        explicit edges, and re-run the XDB query — since every implicit
        edge is a view, results always reflect the current base data
        (the paper's "ad-hoc queries on fresh data" motivation without
        re-planning).
        """
        select = self._parse(query)
        if not self._metadata_fresh:
            self.catalog.refresh()
            self._metadata_fresh = True
        logical_plan = self.optimizer.optimize(select)
        annotation = self.annotator.annotate(logical_plan)
        dplan = self.finalizer.finalize(logical_plan, annotation)
        deployed = self.delegator.delegate(dplan)
        prepared = PreparedQuery(self, deployed, select=select)
        self._prepared.add(prepared)
        return prepared

    def invalidate_metadata(self) -> None:
        self._metadata_fresh = False

    def warm_metadata(self) -> None:
        """Gather global-catalog metadata ahead of time (benchmarks)."""
        self.catalog.refresh()
        self._metadata_fresh = True

    # -- internals ------------------------------------------------------------------

    @staticmethod
    def _parse(query: Union[str, ast.Select]) -> ast.Statement:
        if isinstance(query, ast.QUERY_STATEMENTS):
            return query
        statement = parse_statement(query)
        if not isinstance(statement, ast.QUERY_STATEMENTS):
            raise OptimizerError(
                "XDB accepts analytical SELECT / UNION ALL queries only"
            )
        return statement

    @staticmethod
    def _placement(dplan: DelegationPlan) -> Dict[str, str]:
        """Base table → DBMS map for the recovery placement diff.

        Keyed by scanned table rather than task: a repaired plan may
        merge or split tasks (co-location changes when a replica holder
        takes over), so task identities do not survive re-planning but
        table names do.
        """
        placement: Dict[str, str] = {}
        for task in dplan.tasks.values():
            for scan in task.expr.leaves():
                if not scan.placeholder:
                    placement[scan.table] = task.annotation
        return placement

    @staticmethod
    def _unavailable_db(exc: BaseException) -> Optional[str]:
        """Which DBMS an outage exception blames, if repairable.

        Walks the ``__cause__``/``__context__`` chain for an
        :class:`EngineUnavailableError` carrying a DBMS name (a
        :class:`DelegationError` wraps the original connector error).
        Returns None for unrepairable failures: an
        ``EngineUnavailableError`` with ``db=None`` means every holder
        of some table is down, and a failure with *no* engine-outage in
        its chain (e.g. a transient fault that exhausted the retry
        budget) is not an outage — re-planning cannot help either way.
        """
        seen = set()
        node: Optional[BaseException] = exc
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if isinstance(node, EngineUnavailableError):
                return node.db
            node = node.__cause__ or node.__context__
        return None


class PreparedQuery:
    """A delegated query kept deployed for repeated execution.

    Use as a context manager (or call :meth:`close`) so the short-lived
    views / foreign tables are dropped from the DBMSes afterwards.

    Every :meth:`execute` runs under a *fresh* :class:`QueryContext`,
    so repeated executions report identical, independent numbers —
    counters cannot leak from one run into the next.
    """

    def __init__(
        self,
        xdb: XDB,
        deployed: DeployedQuery,
        select: Optional[ast.Statement] = None,
    ):
        self._xdb = xdb
        self.deployed = deployed
        #: the source query AST, kept so schema drift can trigger a
        #: full replan (re-optimize + re-delegate) of this handle
        self._select = select
        self.executions = 0
        self._closed = False
        #: set when the catalog learned a table this plan scans has
        #: drifted — the next execute replans (or serves a bounded
        #: stale read) instead of running the stale cascade
        self._stale_plan = False
        #: executions counted at the current deployment's creation —
        #: the first run after (re)delegation uses the CTAS snapshots
        self._deploy_execution = 0
        #: simulated time the materialization snapshots were last built
        #: (the CTAS of delegation counts as the first refresh)
        self._refreshed_at = xdb.deployment.health.clock.now()

    @property
    def plan(self) -> DelegationPlan:
        return self.deployed.plan

    @property
    def stale_plan(self) -> bool:
        """Whether the deployed cascade predates a known schema drift."""
        return self._stale_plan

    def invalidate(self) -> None:
        """Force the next :meth:`execute` to replan before running."""
        self._stale_plan = True

    def _note_drift(self, db: str, table: str) -> None:
        """Client callback: ``db.table`` drifted — stale if we scan it."""
        placement = XDB._placement(self.deployed.plan)
        if table.lower() in {name.lower() for name in placement}:
            self._stale_plan = True

    def staleness_seconds(self) -> float:
        """Age of the materialization snapshots (simulated seconds)."""
        now = self._xdb.deployment.health.clock.now()
        return max(now - self._refreshed_at, 0.0)

    def _degradable(self, qos: Optional[QoSPolicy]) -> bool:
        """Whether a stale answer is an acceptable fallback right now:
        the caller opted into a staleness bound and the existing
        snapshots are still within it."""
        return (
            qos is not None
            and qos.max_staleness_seconds is not None
            and self.staleness_seconds() <= qos.max_staleness_seconds
        )

    def _snapshot_hosts_blocked(self) -> bool:
        """Any materialization host with an open breaker right now."""
        health = self._xdb.deployment.health
        return any(
            health.is_open(db)
            for db in {db for db, _, _ in self.deployed.materializations}
        )

    def execute(self, qos: Optional[QoSPolicy] = None) -> XDBReport:
        """Run the deployed XDB query against the current base data.

        Graceful degradation: a policy with ``max_staleness_seconds``
        set allows the execution to fall back to the *existing*
        materialization snapshots — skipping the refresh and admitting
        against the root engine only — when the gate sheds the full
        engine set or a snapshot host's breaker is open, provided the
        snapshots are younger than the bound.  The served staleness is
        recorded in ``report.qos``.

        Schema drift: when the catalog learns a scanned table drifted
        (or this execution trips over the drift itself), the handle
        re-introspects the table and — within the client's
        ``repair_budget`` — either serves a staleness-bounded read
        from the existing snapshots (``report.qos.stale_reason ==
        "drift"``) or replans end to end: re-optimize, re-delegate,
        swap the deployed cascade, and retry.
        """
        if self._closed:
            raise OptimizerError("prepared query is closed")
        budget = self._xdb.repair_budget
        recovery = RecoveryReport()
        while True:
            if self._stale_plan:
                if self._degradable(qos) and self.deployed.materializations:
                    # The snapshots predate the drift and are inside
                    # the caller's staleness bound: serve them rather
                    # than paying for a replan.
                    try:
                        report = self._execute_once(qos, prefer_stale=True)
                        if recovery.drifted:
                            report.recovery = recovery
                        return report
                    except (DeadlineExceeded, OverloadError):
                        raise
                    except ReproError:
                        # The stale cascade cannot answer it either
                        # (the drifted table feeds a view): replan.
                        pass
                self._replan()
            try:
                report = self._execute_once(qos, prefer_stale=False)
            except SchemaDriftError as drift:
                if budget <= 0:
                    raise
                budget -= 1
                self._absorb_drift(drift, recovery)
                continue
            except ReproError as exc:
                drift = self._xdb._sniff_drift(exc, self.deployed.plan)
                if drift is None or budget <= 0:
                    raise
                budget -= 1
                self._absorb_drift(drift, recovery)
                continue
            if recovery.drifted:
                report.recovery = recovery
            return report

    def _absorb_drift(
        self, drift: SchemaDriftError, recovery: RecoveryReport
    ) -> None:
        """Adopt the drifted table's live schema; mark the plan stale."""
        recovery.drift_events += 1
        key = (drift.db, drift.table)
        if key not in recovery.drifted_tables:
            recovery.drifted_tables.append(key)
        self._xdb.catalog.reintrospect(drift.db, drift.table)
        self._stale_plan = True

    def _replan(self) -> None:
        """Re-optimize and re-delegate against the refreshed catalog.

        Swaps in the fresh cascade before tearing down the old one, so
        a failing replan leaves the previous deployment intact (still
        executable for staleness-bounded reads).
        """
        xdb = self._xdb
        if self._select is None:
            raise OptimizerError(
                "prepared query is stale after schema drift and kept no "
                "source query to replan from"
            )
        logical_plan = xdb.optimizer.optimize(self._select)
        annotation = xdb.annotator.annotate(logical_plan)
        dplan = xdb.finalizer.finalize(logical_plan, annotation)
        fresh = xdb.delegator.delegate(dplan)
        old = self.deployed
        self.deployed = fresh
        self._stale_plan = False
        self._deploy_execution = self.executions
        self._refreshed_at = xdb.deployment.health.clock.now()
        try:
            old.cleanup()
        except ReproError:
            # Leaked objects are in the ledger; the reaper collects
            # them once their engine is reachable again.
            pass

    def _execute_once(
        self, qos: Optional[QoSPolicy], prefer_stale: bool = False
    ) -> XDBReport:
        """One execution attempt of the currently deployed cascade."""
        network = self._xdb.deployment.network
        health = self._xdb.deployment.health
        gate = self._xdb.deployment.workload_gate
        priority = qos.priority if qos is not None else PRIORITY_NORMAL
        ctx = QueryContext(label="prepared", qos=qos)
        stale_read = prefer_stale
        stale_reason = "drift" if prefer_stale else ""
        with ctx:
            tracer = ctx.tracer
            lease = None
            try:
                with tracer.span("exec", kind="phase") as exec_span:
                    if stale_read:
                        # Drift-degraded read: the snapshots already
                        # hold the answer, admit the root engine only.
                        engines = [self.deployed.root_db]
                    else:
                        engines = sorted(
                            {
                                task.annotation
                                for task in self.deployed.plan.tasks.values()
                            }
                        )
                    ctx.enter_phase("admission")
                    try:
                        with tracer.span("admit", kind="step"):
                            lease = gate.acquire(
                                engines,
                                priority=priority,
                                deadline=ctx.deadline,
                            )
                            ctx.record_admission(lease)
                    except OverloadError:
                        if stale_read or not self._degradable(qos):
                            raise
                        # Saturated engine set, acceptable staleness:
                        # serve from the snapshots, admitting against
                        # the root engine only.
                        stale_read = True
                        stale_reason = "overload"
                        with tracer.span("admit", kind="step"):
                            lease = gate.acquire(
                                [self.deployed.root_db],
                                priority=priority,
                                deadline=ctx.deadline,
                            )
                            ctx.record_admission(lease)
                    refresh = (
                        self.executions > self._deploy_execution
                        and not stale_read
                    )
                    if (
                        refresh
                        and self._snapshot_hosts_blocked()
                        and self._degradable(qos)
                    ):
                        stale_read = True
                        stale_reason = "breaker-open"
                        refresh = False
                    if refresh:
                        # First execution already materialized during
                        # delegation; later ones rebuild the snapshots.
                        ctx.enter_phase("refresh")
                        try:
                            with tracer.span("refresh", kind="step"):
                                self.deployed.refresh_materializations()
                            self._refreshed_at = health.clock.now()
                        except CircuitOpenError:
                            if not self._degradable(qos):
                                raise
                            stale_read = True
                            stale_reason = "breaker-open"
                    if stale_read:
                        tracer.add_event(
                            "stale-read",
                            staleness_seconds=self.staleness_seconds(),
                        )
                    root_connector = self._xdb.connectors[
                        self.deployed.root_db
                    ]
                    ctx.enter_phase("execute")
                    with tracer.span("execute", kind="step"):
                        result = root_connector.run_query(
                            self.deployed.xdb_query,
                            self._xdb.deployment.client_node,
                        )
                    if ctx.deadline is not None:
                        ctx.deadline.check(
                            "execute", detail="post-execution"
                        )
                    self.executions += 1
                    attribute_edge_stats(
                        self.deployed, exec_span.subtree_records()
                    )
                    with tracer.span("schedule", kind="step"):
                        schedule = simulate_schedule(
                            self.deployed,
                            self._xdb.connectors,
                            network,
                            self._xdb.deployment.client_node,
                            result_bytes=result.byte_size(),
                            worker_slots=_slots(self._xdb.deployment),
                        )
            finally:
                if lease is not None:
                    lease.release()

            qos_report = None
            if qos is not None:
                qos_report = QoSReport(
                    priority=priority,
                    deadline_seconds=qos.deadline_seconds,
                    deadline_remaining_seconds=(
                        ctx.deadline.remaining_seconds
                        if ctx.deadline is not None
                        else None
                    ),
                    admission_wait_seconds=ctx.admission_wait_seconds,
                    admission_sim_seconds=ctx.admission_sim_seconds,
                    admitted_engines=(
                        list(lease.engines) if lease is not None else []
                    ),
                    stale_read=stale_read,
                    staleness_seconds=(
                        self.staleness_seconds() if stale_read else None
                    ),
                    stale_reason=stale_reason if stale_read else "",
                )

            resilience = ctx.resilience_summary(self._xdb.connectors)
            resilience.leaked_objects = self._xdb.ledger.leaked_count()
            report = XDBReport(
                result=result,
                plan=self.deployed.plan,
                deployed=self.deployed,
                annotation=None,
                schedule=schedule,
                phases={
                    "prep": 0.0,
                    "lopt": 0.0,
                    "ann": 0.0,
                    "exec": (
                        schedule.total_seconds
                        + ctx.control_seconds(
                            exec_span, tags=_PREPARED_CONTROL_TAGS
                        )
                        + ctx.backoff_in(exec_span)
                    ),
                },
                transfers=ctx.transfer_summary(exec_span),
                resilience=resilience,
                context=ctx,
                qos=qos_report,
            )
        return report

    def close(self) -> None:
        """Drop every deployed object."""
        if not self._closed:
            self.deployed.cleanup()
            self._closed = True

    def __enter__(self) -> "PreparedQuery":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
