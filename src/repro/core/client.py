"""The XDB facade: submit a cross-database query, get results + metrics.

Mirrors the paper's client flow (Fig. 4b): the middleware optimizes and
delegates, then hands the client an *XDB query* which the client runs on
the root DBMS — XDB itself never touches the data path.  The report
carries the §VI-E phase breakdown (prep / lopt / ann / exec), the
delegation plan with per-edge movement statistics (Table IV), and the
transfer summary for the data-movement experiments (Fig. 14).

The planning machinery itself lives in :mod:`repro.core.pipeline`: a
submission is a :class:`~repro.core.pipeline.PlanState` driven through
the re-enterable stage sequence by :class:`~repro.core.pipeline.
PlanPipeline`, and every recovery flavour (outage, drift, blown
estimate) is a stage re-entry within the repair budget.  This module
keeps the user-facing surface: :class:`XDB`, :class:`XDBReport`, and
:class:`PreparedQuery`.

Every submission runs inside one :class:`~repro.obs.context.
QueryContext`: the phase breakdown, transfer summary, resilience
counters, and recovery report are all *views* over its span tree and
context-scoped metrics — phase times combine real middleware CPU
(span wall time) with the simulated network and retry-backoff seconds
attributed to the phase's subtree (span sim time).  Nothing is read
from global counters or ledger index marks, so concurrent or repeated
submissions cannot leak observations into each other.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.annotate import Annotation, PlanAnnotator
from repro.core.catalog import GlobalCatalog
from repro.core.delegate import DelegationEngine, DeployedQuery
from repro.core.finalize import PlanFinalizer
from repro.core.logical import LogicalOptimizer
from repro.core.pipeline import (  # noqa: F401  (RecoveryReport re-export)
    PlanPipeline,
    PlanState,
    RecoveryReport,
    _slots,
)
from repro.core.plan import DelegationPlan
from repro.core.timing import (
    ScheduleResult,
    attribute_edge_stats,
    simulate_schedule,
)
from repro.drift.ledger import ObjectLedger
from repro.drift.reaper import OrphanReaper, ReapReport
from repro.engine.result import Result
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    OptimizerError,
    OverloadError,
    ReproError,
    SchemaDriftError,
)
from repro.federation.deployment import Deployment
from repro.feedback.harvest import harvest_execution
from repro.feedback.report import qerror_table
from repro.feedback.store import FeedbackOverlay, FeedbackStore, Observation
from repro.net.metrics import ResilienceSummary, TransferSummary
from repro.obs.context import QueryContext
from repro.qos import PRIORITY_NORMAL, QoSPolicy, QoSReport
from repro.sql import ast

#: transfer tags on the execution critical path for prepared
#: re-executions (no annotation phase, so no consult/probe traffic)
_PREPARED_CONTROL_TAGS = ("delegation", "control")


@dataclass
class XDBReport:
    """Everything a query submission produced."""

    result: Result
    plan: DelegationPlan
    deployed: DeployedQuery
    #: None for re-executions of a prepared query (no annotation phase)
    annotation: Optional[Annotation]
    schedule: ScheduleResult
    #: simulated seconds per phase: prep / lopt / ann / exec — phase
    #: times include any simulated retry backoff spent in that phase
    phases: Dict[str, float] = field(default_factory=dict)
    transfers: Optional[TransferSummary] = None
    consultations: int = 0
    #: per-connector retry/failure counters for this submission
    resilience: Optional[ResilienceSummary] = None
    #: plan-repair activity (None for prepared-query re-executions that
    #: re-ran a frozen deployment without any recovery)
    recovery: Optional[RecoveryReport] = None
    #: the observation context the submission ran under: span tree,
    #: context-scoped metrics, attributed transfers, trace exports
    context: Optional[QueryContext] = None
    #: QoS receipt — admission wait, deadline spend, staleness — when
    #: the submission carried a :class:`~repro.qos.QoSPolicy`
    qos: Optional[QoSReport] = None
    #: Q-Error observations harvested from this execution (estimate vs
    #: actual per task boundary and base-table scan)
    feedback: List[Observation] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def execution_seconds(self) -> float:
        return self.phases.get("exec", 0.0)

    @property
    def optimization_seconds(self) -> float:
        return (
            self.phases.get("prep", 0.0)
            + self.phases.get("lopt", 0.0)
            + self.phases.get("ann", 0.0)
        )

    def describe(self) -> str:
        lines = [
            f"delegation plan ({self.plan.task_count()} tasks, "
            f"root @ {self.plan.root.annotation}):",
            self.plan.describe(),
            "phases: "
            + ", ".join(
                f"{name}={seconds:.3f}s"
                for name, seconds in self.phases.items()
            ),
        ]
        if self.transfers is not None:
            lines.append(
                f"data moved: {self.transfers.total_megabytes:.3f} MB in "
                f"{self.transfers.transfer_count} transfers"
            )
        if self.resilience is not None and self.resilience.degraded:
            lines.append(f"resilience: {self.resilience.describe()}")
        if self.recovery is not None and (
            self.recovery.repaired or self.recovery.adapted
        ):
            lines.append(f"recovery: {self.recovery.describe()}")
        if self.qos is not None:
            lines.append(f"qos: {self.qos.describe()}")
        return "\n".join(lines)

    def explain_analyze(self) -> str:
        """EXPLAIN ANALYZE-style span tree for this submission."""
        if self.context is None:
            return "no observation context recorded"
        header = "phases: " + ", ".join(
            f"{name}={seconds:.3f}s" for name, seconds in self.phases.items()
        )
        out = header + "\n" + self.context.explain_tree()
        if self.feedback:
            table = qerror_table(self.feedback)
            if table:
                out += "\n" + table
        resilience = self._branch_resilience_section()
        if resilience:
            out += "\n" + resilience
        return out

    def _branch_resilience_section(self) -> str:
        """Branch-level fault handling for EXPLAIN ANALYZE output.

        Summarizes how the submission survived: branch-scoped repairs
        (failover / re-route / partial degrade), whole-query repairs,
        and speculative-execution (hedging) activity from the parallel
        gather.  Empty when nothing happened — the section only shows
        up on submissions that exercised a fault domain.
        """
        lines: List[str] = []
        recovery = self.recovery
        if recovery is not None:
            for action, db, table in recovery.branch_events:
                where = f"{db}.{table}" if table else db
                lines.append(f"  branch {action}: {where}")
            if recovery.repair_attempts:
                repaired = ", ".join(recovery.repaired_dbs)
                lines.append(
                    f"  query repairs: {recovery.repair_attempts}"
                    + (f" (around {repaired})" if repaired else "")
                )
            if recovery.partial:
                missing = ", ".join(recovery.missing_partitions)
                lines.append(
                    f"  partial answer: {recovery.completeness:.1%} "
                    f"complete (missing {missing})"
                )
        if self.context is not None:
            metrics = self.context.metrics
            launched = int(metrics.value("parallel.hedges_launched"))
            if launched:
                lines.append(
                    f"  hedges: {launched} launched, "
                    f"{int(metrics.value('parallel.hedges_won'))} won, "
                    f"{int(metrics.value('parallel.hedges_wasted'))} wasted"
                )
            cancelled = int(metrics.value("parallel.branches_cancelled"))
            if cancelled:
                lines.append(f"  branches cancelled: {cancelled}")
        if not lines:
            return ""
        return "branch resilience:\n" + "\n".join(lines)

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event JSON for this submission's span tree."""
        if self.context is None:
            raise OptimizerError("no observation context recorded")
        return self.context.to_chrome_trace()


class XDB:
    """The middleware: cross-database optimizer + delegation engine."""

    def __init__(
        self,
        deployment: Deployment,
        movement_policy: str = "cost",
        prune_candidates: bool = True,
        plan_shape: str = "left-deep",
        repair_budget: int = 2,
        ddl_namespace: str = "",
        ledger_path: Optional[str] = None,
        feedback: Optional[FeedbackStore] = None,
        feedback_path: Optional[str] = None,
        adaptivity_threshold: Optional[float] = None,
    ):
        """Create the middleware over ``deployment``.

        The keyword arguments expose the optimizer's ablation knobs:
        ``movement_policy`` ("cost"/"implicit"/"explicit"),
        ``prune_candidates`` (Rule 4's two-candidate pruning), and
        ``plan_shape`` ("left-deep" per the paper, or "bushy" — the
        paper's future-work extension, §IV-B footnote 5).
        ``repair_budget`` bounds the self-healing plan-repair loop:
        how many times one submission may re-plan around an engine
        outage before the failure propagates (0 disables repair).
        ``ddl_namespace`` prefixes every short-lived DDL object this
        client creates — concurrent XDB instances sharing one
        federation give themselves distinct namespaces so their
        ``xf_/xm_/xv_`` objects cannot collide.  ``ledger_path``
        persists the delegated-object ledger as JSON, so a restarted
        client can still reap what a crashed one leaked.

        The Q-Error loop is opt-in: pass a :class:`FeedbackStore` (or
        ``feedback_path`` to persist one as JSON) and every execution
        harvests per-operator (estimate, actual) pairs that re-steer
        the join-order DP and Rule-4 costing of later plans.
        ``adaptivity_threshold`` additionally arms *mid-query*
        adaptation: when a materialized task boundary's Q-Error exceeds
        it, the unexecuted plan suffix is re-annotated with the
        executed tasks pinned.
        """
        self.deployment = deployment
        self.repair_budget = repair_budget
        self.connectors = deployment.connectors
        self.catalog = GlobalCatalog(
            self.connectors,
            partition_specs=deployment.partition_specs,
        )
        #: the persistent Q-Error store (None keeps the loop off)
        if feedback is None and feedback_path is not None:
            feedback = FeedbackStore(path=feedback_path)
        self.feedback = feedback
        self.feedback_overlay = (
            FeedbackOverlay(feedback) if feedback is not None else None
        )
        self.optimizer = LogicalOptimizer(
            self.catalog,
            plan_shape=plan_shape,
            feedback=self.feedback_overlay,
        )
        self.annotator = PlanAnnotator(
            self.connectors,
            deployment.network,
            movement_policy=movement_policy,
            prune_candidates=prune_candidates,
            catalog=self.catalog,
        )
        self.finalizer = PlanFinalizer()
        #: durable record of every delegated DDL object (drift PR);
        #: feeds the cumulative leak accounting and the orphan reaper
        self.ledger = ObjectLedger(namespace=ddl_namespace, path=ledger_path)
        self.delegator = DelegationEngine(
            self.connectors, namespace=ddl_namespace, ledger=self.ledger
        )
        #: epoch-fenced reaper: reconciles engine-held ``xf_/xm_/xv_``
        #: objects against the ledger, dropping only retired epochs
        self.reaper = OrphanReaper(
            self.ledger, self.connectors, health=deployment.health
        )
        # Engine recovery (breaker half-open → closed) marks the engine
        # pending; the *next* submission sweeps it — sweeping inside the
        # guarded call path would recurse into the connectors.
        deployment.health.add_recovery_listener(self.reaper.note_recovery)
        #: live PreparedQuery handles, so drift recovery can invalidate
        #: prepared plans that scan a re-introspected table
        self._prepared: "weakref.WeakSet[PreparedQuery]" = weakref.WeakSet()
        #: the re-enterable planning pipeline every submission runs on
        self.pipeline = PlanPipeline(
            deployment,
            self.catalog,
            self.optimizer,
            self.annotator,
            self.finalizer,
            self.delegator,
            repair_budget=repair_budget,
            feedback=feedback,
            adaptivity_threshold=adaptivity_threshold,
            on_drift=self._invalidate_prepared,
        )

    @property
    def _metadata_fresh(self) -> bool:
        return self.pipeline.metadata_fresh

    @_metadata_fresh.setter
    def _metadata_fresh(self, value: bool) -> None:
        self.pipeline.metadata_fresh = value

    # -- public API --------------------------------------------------------------

    def submit(
        self,
        query: Union[str, ast.Select],
        cleanup: bool = True,
        refresh_metadata: bool = False,
        qos: Optional[QoSPolicy] = None,
    ) -> XDBReport:
        """Run a cross-database query end to end and report everything.

        Self-healing: when a DBMS turns out to be unavailable during
        annotation-time consultation, delegation, or execution, the
        outage is reported to the deployment's health registry (the
        breaker trips, so subsequent calls fail fast), any partially
        deployed objects are cleaned up best-effort, and the cached
        logical plan is re-annotated — replicated tables route to a
        surviving holder — then re-delegated and re-executed.  The loop
        is bounded by ``repair_budget``; unrepairable outages (the only
        holder of a table is down) propagate immediately.

        QoS: with a :class:`~repro.qos.QoSPolicy` the submission holds
        one admission token per engine its plan touches for the whole
        execution phase (queueing or shedding under overload, by
        priority), draws every connector call, retry, backoff, and
        queue wait from one per-query :class:`~repro.qos.Deadline`
        budget, and — should that budget expire mid-delegation — rolls
        the in-flight DDL back under the deadline's grace budget before
        raising a structured :class:`~repro.errors.DeadlineExceeded`.
        """
        # Engines that recovered since the last submission get their
        # deferred orphan sweep now, outside the query's context (and
        # never allowed to fail the query itself).
        try:
            self.reaper.sweep_pending()
        except ReproError:
            pass
        priority = qos.priority if qos is not None else PRIORITY_NORMAL
        state = self.pipeline.new_state(query, budget=self.repair_budget)
        ctx = QueryContext(label=state.label, qos=qos)
        with ctx:
            prep_span, lopt_span, ann_span = self.pipeline.plan(
                state, ctx, refresh_metadata=refresh_metadata
            )
            self.pipeline.execute(state, ctx, cleanup=cleanup, qos=qos)

            qos_report = None
            if qos is not None:
                qos_report = QoSReport(
                    priority=priority,
                    deadline_seconds=qos.deadline_seconds,
                    deadline_remaining_seconds=(
                        ctx.deadline.remaining_seconds
                        if ctx.deadline is not None
                        else None
                    ),
                    admission_wait_seconds=ctx.admission_wait_seconds,
                    admission_sim_seconds=ctx.admission_sim_seconds,
                    admitted_engines=list(state.admitted_engines),
                )
                if state.recovery is not None and state.recovery.partial:
                    qos_report.partial = True
                    qos_report.completeness = state.recovery.completeness
                    qos_report.missing_partitions = list(
                        state.recovery.missing_partitions
                    )

            resilience = ctx.resilience_summary(self.connectors)
            resilience.leaked_objects = self.ledger.leaked_count()
            report = XDBReport(
                result=state.result,
                plan=state.dplan,
                deployed=state.deployed,
                annotation=state.annotation,
                schedule=state.schedule,
                phases={
                    "prep": ctx.phase_seconds(prep_span),
                    "lopt": ctx.phase_seconds(lopt_span),
                    "ann": ctx.phase_seconds(ann_span),
                    "exec": state.exec_seconds,
                },
                transfers=state.transfers,
                consultations=state.annotation.consultations,
                resilience=resilience,
                recovery=state.recovery,
                context=ctx,
                qos=qos_report,
                feedback=list(state.observations),
            )
        return report

    def reap(self, dbs: Optional[List[str]] = None) -> ReapReport:
        """Reconcile engine-held delegated objects against the ledger.

        Sweeps every reachable engine (or just ``dbs``), dropping
        ``xf_/xm_/xv_`` objects from *retired* epochs — a live
        deployment's objects are fenced and never touched.  Engines
        that are down are skipped and re-swept automatically after
        their breaker closes (see the recovery listener).
        """
        return self.reaper.sweep(dbs)

    def explain(self, query: Union[str, ast.Select]) -> str:
        """Produce the delegation plan (Table IV style) without executing."""
        state = self.pipeline.new_state(query, budget=0)
        self.pipeline.plan_offline(state)
        return state.dplan.describe()

    def explain_analyze(
        self,
        query: Union[str, ast.Select],
        cleanup: bool = True,
        refresh_metadata: bool = False,
    ) -> str:
        """Run the query and render its observed span tree.

        The cross-database analogue of ``EXPLAIN ANALYZE``: submits the
        query, then prints the phase breakdown, every span (engine
        calls, DDL statements, operator cardinalities, schedule tasks)
        with its wall/simulated timings, and the per-operator Q-Error
        table — estimated vs actual rows, worst miss flagged as the
        planning locus with its routed rewrite hypothesis.
        """
        report = self.submit(
            query, cleanup=cleanup, refresh_metadata=refresh_metadata
        )
        return report.explain_analyze()

    def plan_query(
        self, query: Union[str, ast.Select]
    ) -> DelegationPlan:
        """Optimize + annotate + finalize, returning the delegation plan."""
        state = self.pipeline.new_state(query, budget=0)
        self.pipeline.plan_offline(state)
        return state.dplan

    def prepare(self, query: Union[str, ast.Select]) -> "PreparedQuery":
        """Optimize + delegate once; execute many times on fresh data.

        The delegation cascade stays deployed: re-executions skip the
        optimizer and delegation phases entirely, re-materialize the
        explicit edges, and re-run the XDB query — since every implicit
        edge is a view, results always reflect the current base data
        (the paper's "ad-hoc queries on fresh data" motivation without
        re-planning).
        """
        state = self.pipeline.new_state(query, budget=0)
        self.pipeline.plan_offline(state)
        deployed = self.delegator.delegate(state.dplan)
        prepared = PreparedQuery(
            self, deployed, select=state.select, label=state.label
        )
        self._prepared.add(prepared)
        return prepared

    def invalidate_metadata(self) -> None:
        self.pipeline.metadata_fresh = False

    def warm_metadata(self) -> None:
        """Gather global-catalog metadata ahead of time (benchmarks)."""
        self.catalog.refresh()
        self.pipeline.metadata_fresh = True

    # -- internals ------------------------------------------------------------------

    def _invalidate_prepared(self, db: str, table: str) -> None:
        """Mark prepared queries scanning ``db.table`` as stale."""
        for prepared in list(self._prepared):
            prepared._note_drift(db, table)

    def _sniff_drift(
        self, exc: BaseException, dplan: Optional[DelegationPlan]
    ) -> Optional[SchemaDriftError]:
        return self.pipeline.sniff_drift(exc, dplan)

    @staticmethod
    def _parse(query: Union[str, ast.Select]) -> ast.Statement:
        return PlanPipeline.parse(query)

    @staticmethod
    def _placement(dplan: DelegationPlan) -> Dict[str, str]:
        return PlanPipeline.placement(dplan)

    @staticmethod
    def _unavailable_db(exc: BaseException) -> Optional[str]:
        return PlanPipeline.unavailable_db(exc)


class PreparedQuery:
    """A delegated query kept deployed for repeated execution.

    Use as a context manager (or call :meth:`close`) so the short-lived
    views / foreign tables are dropped from the DBMSes afterwards.

    Every :meth:`execute` runs under a *fresh* :class:`QueryContext`,
    so repeated executions report identical, independent numbers —
    counters cannot leak from one run into the next.
    """

    def __init__(
        self,
        xdb: XDB,
        deployed: DeployedQuery,
        select: Optional[ast.Statement] = None,
        label: str = "",
    ):
        self._xdb = xdb
        self.deployed = deployed
        #: the source query AST, kept so schema drift (or a blown
        #: estimate) can trigger a full replan of this handle
        self._select = select
        #: the source SQL text — prepared contexts used to label every
        #: span "prepared"; now they carry the actual query
        self._label = label
        self.executions = 0
        self._closed = False
        #: set when the catalog learned a table this plan scans has
        #: drifted — the next execute replans (or serves a bounded
        #: stale read) instead of running the stale cascade
        self._stale_plan = False
        #: set when the last execution's Q-Error blew the threshold —
        #: the next execute replans against the warmed feedback store
        #: (the learned cardinalities re-steer the join-order DP)
        self._estimates_blown = False
        #: executions counted at the current deployment's creation —
        #: the first run after (re)delegation uses the CTAS snapshots
        self._deploy_execution = 0
        #: simulated time the materialization snapshots were last built
        #: (the CTAS of delegation counts as the first refresh)
        self._refreshed_at = xdb.deployment.health.clock.now()

    @property
    def plan(self) -> DelegationPlan:
        return self.deployed.plan

    @property
    def stale_plan(self) -> bool:
        """Whether the deployed cascade predates a known schema drift."""
        return self._stale_plan

    def invalidate(self) -> None:
        """Force the next :meth:`execute` to replan before running."""
        self._stale_plan = True

    def _note_drift(self, db: str, table: str) -> None:
        """Client callback: ``db.table`` drifted — stale if we scan it."""
        placement = XDB._placement(self.deployed.plan)
        if table.lower() in {name.lower() for name in placement}:
            self._stale_plan = True

    def staleness_seconds(self) -> float:
        """Age of the materialization snapshots (simulated seconds)."""
        now = self._xdb.deployment.health.clock.now()
        return max(now - self._refreshed_at, 0.0)

    def _degradable(self, qos: Optional[QoSPolicy]) -> bool:
        """Whether a stale answer is an acceptable fallback right now:
        the caller opted into a staleness bound and the existing
        snapshots are still within it."""
        return (
            qos is not None
            and qos.max_staleness_seconds is not None
            and self.staleness_seconds() <= qos.max_staleness_seconds
        )

    def _snapshot_hosts_blocked(self) -> bool:
        """Any materialization host with an open breaker right now."""
        health = self._xdb.deployment.health
        return any(
            health.is_open(db)
            for db in {db for db, _, _ in self.deployed.materializations}
        )

    def execute(self, qos: Optional[QoSPolicy] = None) -> XDBReport:
        """Run the deployed XDB query against the current base data.

        Graceful degradation: a policy with ``max_staleness_seconds``
        set allows the execution to fall back to the *existing*
        materialization snapshots — skipping the refresh and admitting
        against the root engine only — when the gate sheds the full
        engine set or a snapshot host's breaker is open, provided the
        snapshots are younger than the bound.  The served staleness is
        recorded in ``report.qos``.

        Schema drift: when the catalog learns a scanned table drifted
        (or this execution trips over the drift itself), the handle
        re-introspects the table and — within the client's
        ``repair_budget`` — either serves a staleness-bounded read
        from the existing snapshots (``report.qos.stale_reason ==
        "drift"``) or replans end to end: re-optimize, re-delegate,
        swap the deployed cascade, and retry.

        Cardinality feedback: when the client carries a feedback store
        and an execution's worst Q-Error blows the adaptivity
        threshold, the *next* execute replans the same way — this time
        the optimizer's estimators run under the learned cardinalities,
        so the replanned cascade reflects observed row counts.
        """
        if self._closed:
            raise OptimizerError("prepared query is closed")
        budget = self._xdb.repair_budget
        recovery = RecoveryReport()
        while True:
            if self._stale_plan:
                if self._degradable(qos) and self.deployed.materializations:
                    # The snapshots predate the drift and are inside
                    # the caller's staleness bound: serve them rather
                    # than paying for a replan.
                    try:
                        report = self._execute_once(qos, prefer_stale=True)
                        if recovery.drifted:
                            report.recovery = recovery
                        return report
                    except (DeadlineExceeded, OverloadError):
                        raise
                    except ReproError:
                        # The stale cascade cannot answer it either
                        # (the drifted table feeds a view): replan.
                        pass
                self._replan()
            elif self._estimates_blown and self._select is not None:
                # The warmed feedback store holds the corrected
                # cardinalities; re-enter the pipeline at optimize.
                self._replan()
                recovery.adaptations += 1
            try:
                report = self._execute_once(qos, prefer_stale=False)
            except SchemaDriftError as drift:
                if budget <= 0:
                    raise
                budget -= 1
                self._absorb_drift(drift, recovery)
                continue
            except ReproError as exc:
                drift = self._xdb._sniff_drift(exc, self.deployed.plan)
                if drift is None or budget <= 0:
                    raise
                budget -= 1
                self._absorb_drift(drift, recovery)
                continue
            if recovery.drifted or recovery.adapted:
                report.recovery = recovery
            return report

    def _absorb_drift(
        self, drift: SchemaDriftError, recovery: RecoveryReport
    ) -> None:
        """Adopt the drifted table's live schema; mark the plan stale."""
        recovery.drift_events += 1
        key = (drift.db, drift.table)
        if key not in recovery.drifted_tables:
            recovery.drifted_tables.append(key)
        self._xdb.catalog.reintrospect(drift.db, drift.table)
        if self._xdb.feedback is not None:
            self._xdb.feedback.invalidate_table(drift.db, drift.table)
        self._stale_plan = True

    def _replan(self) -> None:
        """Re-optimize and re-delegate against the refreshed catalog.

        Re-enters the planning pipeline at the ``optimize`` stage (the
        catalog refresh is deliberately skipped — the prepared handle
        trusts its catalog, which drift recovery already refreshed).
        Swaps in the fresh cascade before tearing down the old one, so
        a failing replan leaves the previous deployment intact (still
        executable for staleness-bounded reads).
        """
        xdb = self._xdb
        if self._select is None:
            raise OptimizerError(
                "prepared query is stale after schema drift and kept no "
                "source query to replan from"
            )
        state = xdb.pipeline.new_state(self._select, budget=0)
        state.select = self._select
        state.stage = "optimize"
        xdb.pipeline.plan_offline(state)
        fresh = xdb.delegator.delegate(state.dplan)
        old = self.deployed
        self.deployed = fresh
        self._stale_plan = False
        self._estimates_blown = False
        self._deploy_execution = self.executions
        self._refreshed_at = xdb.deployment.health.clock.now()
        try:
            old.cleanup()
        except ReproError:
            # Leaked objects are in the ledger; the reaper collects
            # them once their engine is reachable again.
            pass

    def _execute_once(
        self, qos: Optional[QoSPolicy], prefer_stale: bool = False
    ) -> XDBReport:
        """One execution attempt of the currently deployed cascade."""
        network = self._xdb.deployment.network
        health = self._xdb.deployment.health
        gate = self._xdb.deployment.workload_gate
        priority = qos.priority if qos is not None else PRIORITY_NORMAL
        ctx = QueryContext(label=self._label or "prepared", qos=qos)
        stale_read = prefer_stale
        stale_reason = "drift" if prefer_stale else ""
        with ctx:
            tracer = ctx.tracer
            lease = None
            try:
                with tracer.span("exec", kind="phase") as exec_span:
                    if stale_read:
                        # Drift-degraded read: the snapshots already
                        # hold the answer, admit the root engine only.
                        engines = [self.deployed.root_db]
                    else:
                        engines = sorted(
                            {
                                task.annotation
                                for task in self.deployed.plan.tasks.values()
                            }
                        )
                    ctx.enter_phase("admission")
                    try:
                        with tracer.span("admit", kind="step"):
                            lease = gate.acquire(
                                engines,
                                priority=priority,
                                deadline=ctx.deadline,
                            )
                            ctx.record_admission(lease)
                    except OverloadError:
                        if stale_read or not self._degradable(qos):
                            raise
                        # Saturated engine set, acceptable staleness:
                        # serve from the snapshots, admitting against
                        # the root engine only.
                        stale_read = True
                        stale_reason = "overload"
                        with tracer.span("admit", kind="step"):
                            lease = gate.acquire(
                                [self.deployed.root_db],
                                priority=priority,
                                deadline=ctx.deadline,
                            )
                            ctx.record_admission(lease)
                    refresh = (
                        self.executions > self._deploy_execution
                        and not stale_read
                    )
                    if (
                        refresh
                        and self._snapshot_hosts_blocked()
                        and self._degradable(qos)
                    ):
                        stale_read = True
                        stale_reason = "breaker-open"
                        refresh = False
                    if refresh:
                        # First execution already materialized during
                        # delegation; later ones rebuild the snapshots.
                        ctx.enter_phase("refresh")
                        try:
                            with tracer.span("refresh", kind="step"):
                                self.deployed.refresh_materializations()
                            self._refreshed_at = health.clock.now()
                        except CircuitOpenError:
                            if not self._degradable(qos):
                                raise
                            stale_read = True
                            stale_reason = "breaker-open"
                    if stale_read:
                        tracer.add_event(
                            "stale-read",
                            staleness_seconds=self.staleness_seconds(),
                        )
                    root_connector = self._xdb.connectors[
                        self.deployed.root_db
                    ]
                    ctx.enter_phase("execute")
                    with tracer.span("execute", kind="step"):
                        result = root_connector.run_query(
                            self.deployed.xdb_query,
                            self._xdb.deployment.client_node,
                        )
                    if ctx.deadline is not None:
                        ctx.deadline.check(
                            "execute", detail="post-execution"
                        )
                    self.executions += 1
                    attribute_edge_stats(
                        self.deployed, exec_span.subtree_records()
                    )
                    with tracer.span("schedule", kind="step"):
                        schedule = simulate_schedule(
                            self.deployed,
                            self._xdb.connectors,
                            network,
                            self._xdb.deployment.client_node,
                            result_bytes=result.byte_size(),
                            worker_slots=_slots(self._xdb.deployment),
                        )
                    observations = harvest_execution(
                        self.deployed.plan,
                        exec_span,
                        self._xdb.catalog,
                        len(result.rows),
                    )
                    if self._xdb.feedback is not None and observations:
                        with tracer.span("harvest", kind="step"):
                            self._xdb.feedback.observe_many(observations)
                        threshold = (
                            self._xdb.pipeline.adaptivity_threshold
                            if self._xdb.pipeline.adaptivity_threshold
                            is not None
                            else 2.0
                        )
                        worst = max(
                            (obs.q_error for obs in observations),
                            default=1.0,
                        )
                        if worst > threshold and self._select is not None:
                            self._estimates_blown = True
            finally:
                if lease is not None:
                    lease.release()

            qos_report = None
            if qos is not None:
                qos_report = QoSReport(
                    priority=priority,
                    deadline_seconds=qos.deadline_seconds,
                    deadline_remaining_seconds=(
                        ctx.deadline.remaining_seconds
                        if ctx.deadline is not None
                        else None
                    ),
                    admission_wait_seconds=ctx.admission_wait_seconds,
                    admission_sim_seconds=ctx.admission_sim_seconds,
                    admitted_engines=(
                        list(lease.engines) if lease is not None else []
                    ),
                    stale_read=stale_read,
                    staleness_seconds=(
                        self.staleness_seconds() if stale_read else None
                    ),
                    stale_reason=stale_reason if stale_read else "",
                )

            resilience = ctx.resilience_summary(self._xdb.connectors)
            resilience.leaked_objects = self._xdb.ledger.leaked_count()
            report = XDBReport(
                result=result,
                plan=self.deployed.plan,
                deployed=self.deployed,
                annotation=None,
                schedule=schedule,
                phases={
                    "prep": 0.0,
                    "lopt": 0.0,
                    "ann": 0.0,
                    "exec": (
                        schedule.total_seconds
                        + ctx.control_seconds(
                            exec_span, tags=_PREPARED_CONTROL_TAGS
                        )
                        + ctx.backoff_in(exec_span)
                    ),
                },
                transfers=ctx.transfer_summary(exec_span),
                resilience=resilience,
                context=ctx,
                qos=qos_report,
                feedback=observations,
            )
        return report

    def close(self) -> None:
        """Drop every deployed object."""
        if not self._closed:
            self.deployed.cleanup()
            self._closed = True

    def __enter__(self) -> "PreparedQuery":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
