"""Delegation plans: the intermediate representation of §IV-A.

A delegation plan is a DAG ``G = (T, E)``: tasks are algebraic
expressions annotated with the DBMS that must evaluate them; edges are
dataflow operations between tasks, either *implicit* (pipelined through
a foreign table) or *explicit* (materialized on the consumer).

Task expressions are ordinary logical plans whose cross-task inputs are
*placeholder scans* (the paper's ``?`` dummy operators).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import OptimizerError
from repro.relational import algebra


class Movement(enum.Enum):
    """Dataflow operation type between two tasks (§IV-A)."""

    IMPLICIT = "i"
    EXPLICIT = "e"

    def __str__(self) -> str:
        return self.value


@dataclass
class TaskEdge:
    """A dataflow edge ``producer --x--> consumer``.

    ``placeholder`` names the dummy scan inside the consumer's
    expression that stands for the producer's output.
    """

    producer_id: int
    consumer_id: int
    movement: Movement
    placeholder: str
    #: filled after execution: rows / bytes actually moved
    moved_rows: Optional[int] = None
    moved_bytes: Optional[int] = None


@dataclass
class Task:
    """One unit of delegated work: ``annotation : expression``."""

    task_id: int
    annotation: str
    expr: algebra.LogicalPlan
    #: estimated output cardinality (from the logical phase)
    estimated_rows: float = 0.0
    #: the pre-finalization logical subtree this task evaluates — the
    #: cardinality-feedback loop fingerprints it to key observed row
    #: counts independently of how the plan was cut into tasks
    source_expr: Optional[algebra.LogicalPlan] = None

    def placeholders(self) -> List[algebra.Scan]:
        """Placeholder scans inside this task's expression."""
        return [
            scan for scan in self.expr.leaves() if scan.placeholder
        ]

    def base_tables(self) -> List[str]:
        """Names of real stored relations this task scans."""
        return [
            scan.table for scan in self.expr.leaves() if not scan.placeholder
        ]

    def notation(self, compact: bool = True) -> str:
        """Paper-style algebra notation, e.g. ``⋈(⋈(n,r),s)``."""
        return _notation(self.expr, compact)

    def __str__(self) -> str:
        return f"{self.annotation}:{self.notation()}"


def _notation(plan: algebra.LogicalPlan, compact: bool) -> str:
    if isinstance(plan, algebra.Scan):
        return "?" if plan.placeholder else plan.table
    if isinstance(plan, algebra.Join):
        left = _notation(plan.left, compact)
        right = _notation(plan.right, compact)
        symbol = "x" if plan.kind == "CROSS" else "⋈"
        return f"{symbol}({left},{right})"
    if isinstance(plan, algebra.Filter):
        inner = _notation(plan.child, compact)
        return inner if compact else f"σ({inner})"
    if isinstance(plan, algebra.Project):
        inner = _notation(plan.child, compact)
        return inner if compact else f"π({inner})"
    if isinstance(plan, algebra.Aggregate):
        return f"γ({_notation(plan.child, compact)})"
    if isinstance(plan, algebra.Union):
        left = _notation(plan.left, compact)
        right = _notation(plan.right, compact)
        return f"∪({left},{right})"
    children = plan.children()
    if len(children) == 1:
        return _notation(children[0], compact)
    raise OptimizerError(
        f"cannot render notation for {type(plan).__name__}"
    )


class DelegationPlan:
    """The task DAG (a tree for left-deep plans) plus its edges."""

    def __init__(self) -> None:
        self.tasks: Dict[int, Task] = {}
        self.edges: List[TaskEdge] = []
        self.root_id: Optional[int] = None
        self._next_id = 1

    # -- construction ------------------------------------------------------

    def new_task(
        self,
        annotation: str,
        expr: algebra.LogicalPlan,
        estimated_rows: float = 0.0,
        source_expr: Optional[algebra.LogicalPlan] = None,
    ) -> Task:
        task = Task(
            self._next_id, annotation, expr, estimated_rows, source_expr
        )
        self.tasks[task.task_id] = task
        self._next_id += 1
        return task

    def add_edge(
        self,
        producer: Task,
        consumer: Task,
        movement: Movement,
        placeholder: str,
    ) -> TaskEdge:
        edge = TaskEdge(
            producer.task_id, consumer.task_id, movement, placeholder
        )
        self.edges.append(edge)
        return edge

    def set_root(self, task: Task) -> None:
        self.root_id = task.task_id

    # -- navigation ---------------------------------------------------------

    @property
    def root(self) -> Task:
        if self.root_id is None:
            raise OptimizerError("delegation plan has no root task")
        return self.tasks[self.root_id]

    def children_of(self, task: Task) -> List[Task]:
        return [
            self.tasks[edge.producer_id]
            for edge in self.edges
            if edge.consumer_id == task.task_id
        ]

    def in_edges(self, task: Task) -> List[TaskEdge]:
        return [
            edge for edge in self.edges if edge.consumer_id == task.task_id
        ]

    def out_edge(self, task: Task) -> Optional[TaskEdge]:
        for edge in self.edges:
            if edge.producer_id == task.task_id:
                return edge
        return None

    def topological(self) -> Iterator[Task]:
        """Tasks bottom-up: every producer before its consumers."""
        visited: List[int] = []

        def visit(task: Task) -> None:
            for child in self.children_of(task):
                if child.task_id not in visited:
                    visit(child)
            visited.append(task.task_id)

        visit(self.root)
        for task_id in visited:
            yield self.tasks[task_id]

    # -- introspection -------------------------------------------------------

    def task_count(self) -> int:
        return len(self.tasks)

    def movement_counts(self) -> Dict[Movement, int]:
        counts = {Movement.IMPLICIT: 0, Movement.EXPLICIT: 0}
        for edge in self.edges:
            counts[edge.movement] += 1
        return counts

    def annotations(self) -> List[str]:
        seen: List[str] = []
        for task in self.tasks.values():
            if task.annotation not in seen:
                seen.append(task.annotation)
        return seen

    def describe(self) -> str:
        """Paper-style dump: one line per edge, Table IV format."""
        lines: List[str] = []
        for edge in self.edges:
            producer = self.tasks[edge.producer_id]
            consumer = self.tasks[edge.consumer_id]
            rows = (
                f"  [{edge.moved_rows} rows]"
                if edge.moved_rows is not None
                else ""
            )
            lines.append(
                f"{producer} --{edge.movement}--> {consumer}{rows}"
            )
        if not lines:
            lines.append(f"single task: {self.root}")
        return "\n".join(lines)
