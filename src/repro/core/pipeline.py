"""The re-enterable planning pipeline (parse → … → execute).

One submission used to be a ~350-line monolith in ``XDB.submit``, with
the annotate/finalize repair loop copy-pasted into drift recovery and
the prepared-query replan.  This module folds all of it into a single
:class:`PlanPipeline` over an explicit, typed :class:`PlanState`:

    parse → catalog → optimize → annotate → finalize → delegate → execute

Every stage writes its output onto the state and advances
``state.stage``; re-running the pipeline skips completed stages.  All
three recovery flavours become *stage re-entry within the repair
budget*:

* **outage repair** re-enters at ``annotate`` (the annotator sees the
  open breaker and routes replicated tables to a surviving holder);
* **schema drift** re-enters at ``optimize`` (the catalog re-adopted
  the live schema, so the plan must be rebuilt from the source query);
* **blown estimates** (new — the Q-Error loop) re-enter at
  ``annotate`` with the already-materialized producer tasks pinned as
  scans of their ``xm_`` snapshots, so only the *unexecuted suffix* of
  the plan is re-annotated and re-delegated.

The pipeline also closes the cardinality-feedback loop: after every
execution it harvests (estimate, actual) pairs from the delegation
plan's edge statistics and the operator spans, and — when the client
carries a :class:`~repro.feedback.store.FeedbackStore` — persists them
so the next optimization of an equivalent subexpression runs on
observed row counts.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.annotate import Annotation, PlanAnnotator
from repro.core.catalog import GlobalCatalog
from repro.core.delegate import DelegationEngine, DeployedQuery
from repro.core.finalize import PlanFinalizer
from repro.core.logical import LogicalOptimizer
from repro.core.partition import (
    is_partition_table,
    partition_completeness,
    prune_missing_shards,
)
from repro.core.plan import DelegationPlan, Movement
from repro.core.timing import (
    ScheduleResult,
    attribute_edge_stats,
    simulate_schedule,
)
from repro.engine.cost import CardinalityEstimator
from repro.engine.result import Result
from repro.errors import (
    BindError,
    CatalogError,
    DeadlineExceeded,
    DelegationError,
    EngineUnavailableError,
    OptimizerError,
    ReproError,
    SchemaDriftError,
    TypeCheckError,
)
from repro.federation.deployment import Deployment
from repro.feedback import qerror
from repro.feedback.harvest import harvest_execution
from repro.feedback.store import FeedbackOverlay, FeedbackStore, Observation
from repro.health import BreakerEvent
from repro.net.metrics import TransferSummary
from repro.obs.clock import wall_now
from repro.obs.context import QueryContext
from repro.qos import PRIORITY_NORMAL, QoSPolicy
from repro.relational import algebra
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.render import render

#: The pipeline's stages, in order.  ``PlanState.stage`` names the next
#: stage to run; re-entry means resetting it to an earlier stage and
#: running the pipeline again.
STAGES = (
    "parse",
    "catalog",
    "optimize",
    "annotate",
    "finalize",
    "delegate",
    "execute",
)


def _stage_index(stage: str) -> int:
    try:
        return STAGES.index(stage)
    except ValueError:
        raise OptimizerError(
            f"unknown pipeline stage {stage!r} (expected one of {STAGES})"
        )


@dataclass
class RecoveryReport:
    """What the self-healing layer did for one submission.

    Present on every report; :attr:`repaired` distinguishes the common
    untouched case from submissions the plan-repair loop had to
    re-annotate around an engine outage.
    """

    #: how many times the repair loop re-planned (0 = no repair needed)
    repair_attempts: int = 0
    #: DBMSes reported to the health registry as down, in repair order
    repaired_dbs: List[str] = field(default_factory=list)
    #: simulated + CPU seconds spent from first failure to repaired run
    repair_seconds: float = 0.0
    #: circuit-breaker transitions recorded during this submission
    breaker_transitions: List[BreakerEvent] = field(default_factory=list)
    #: where each base table's scan ran in the first finalized plan
    #: (table → DBMS) — keyed by table, not task, because a repaired
    #: plan may group operators into different tasks entirely
    placement_before: Dict[str, str] = field(default_factory=dict)
    #: scan placement of the plan that actually produced the result
    placement: Dict[str, str] = field(default_factory=dict)
    #: schema drifts absorbed (re-introspect + replan) this submission
    drift_events: int = 0
    #: (db, table) pairs whose drift was absorbed, in detection order
    drifted_tables: List[Tuple[str, str]] = field(default_factory=list)
    #: (db, table) pairs quarantined as unreconcilable this submission
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    #: mid-query adaptations: suffix replans off a blown estimate
    adaptations: int = 0
    #: (task_id, q_error) pairs that tripped the adaptivity threshold
    blown_estimates: List[Tuple[int, float]] = field(default_factory=list)
    #: producer tasks whose materializations were pinned during
    #: adaptation (their snapshots were reused, not recomputed)
    pinned_tasks: List[int] = field(default_factory=list)
    #: branch-scoped recoveries: a failed delegated task / union branch
    #: was re-routed (or its shard quarantined) *in place*, with the
    #: completed sibling snapshots pinned — no whole-query re-entry, so
    #: these do NOT count toward :attr:`repair_attempts`
    branch_repairs: int = 0
    #: one ``(action, db, table)`` per branch repair, in order — action
    #: is ``"failover"`` (shard re-routed to a surviving holder),
    #: ``"reroute"`` (engine-level branch failure re-placed around the
    #: outage), or ``"partial"`` (shard dropped under ``allow_partial``)
    branch_events: List[Tuple[str, str, str]] = field(default_factory=list)
    #: True when the answer omits shards that lost every healthy holder
    partial: bool = False
    #: row-weighted fraction of the partitioned data the answer covers
    completeness: float = 1.0
    #: shard tables missing from a partial answer
    missing_partitions: List[str] = field(default_factory=list)

    @property
    def repaired(self) -> bool:
        return self.repair_attempts > 0

    @property
    def branch_repaired(self) -> bool:
        return self.branch_repairs > 0

    @property
    def drifted(self) -> bool:
        return self.drift_events > 0

    @property
    def adapted(self) -> bool:
        return self.adaptations > 0

    def placement_diff(self) -> Dict[str, Tuple[str, str]]:
        """Tables whose scan moved: table → (old DBMS, new DBMS)."""
        diff: Dict[str, Tuple[str, str]] = {}
        for table, db in self.placement.items():
            before = self.placement_before.get(table)
            if before is not None and before != db:
                diff[table] = (before, db)
        return diff

    def describe(self) -> str:
        if (
            not self.repaired
            and not self.drifted
            and not self.adapted
            and not self.branch_repaired
            and not self.partial
        ):
            return "no repair needed"
        parts = []
        if self.branch_repaired:
            events = ", ".join(
                f"{action} {db + '.' if db else ''}{table or '?'}"
                for action, db, table in self.branch_events
            )
            parts.append(
                f"{self.branch_repairs} branch repair(s) ({events})"
            )
        if self.partial:
            parts.append(
                f"partial answer: {self.completeness:.1%} complete, "
                f"missing {', '.join(self.missing_partitions)}"
            )
        if self.repaired:
            moved = ", ".join(
                f"{table}: {old}→{new}"
                for table, (old, new) in sorted(
                    self.placement_diff().items()
                )
            )
            parts.append(
                f"{self.repair_attempts} repair(s) around "
                f"{sorted(set(self.repaired_dbs))} in "
                f"{self.repair_seconds:.3f}s"
                + (f"; moved {moved}" if moved else "")
            )
        if self.drifted:
            drifted = ", ".join(
                f"{db}.{table}" for db, table in self.drifted_tables
            )
            line = f"{self.drift_events} drift(s) absorbed on {drifted}"
            if not self.repaired:
                line += f" in {self.repair_seconds:.3f}s"
            if self.quarantined:
                line += "; quarantined " + ", ".join(
                    f"{db}.{table}" for db, table in self.quarantined
                )
            parts.append(line)
        if self.adapted:
            if self.blown_estimates or self.pinned_tasks:
                worst = max(
                    (q for _, q in self.blown_estimates), default=0.0
                )
                worst_text = (
                    "inf" if worst == qerror.INFINITE else f"{worst:.1f}"
                )
                parts.append(
                    f"{self.adaptations} mid-query adaptation(s) "
                    f"(worst Q-Error {worst_text}; pinned tasks "
                    f"{sorted(self.pinned_tasks)})"
                )
            else:
                # A prepared handle replanned between executions off
                # the warmed feedback store — no mid-query pinning.
                parts.append(
                    f"{self.adaptations} feedback replan(s) "
                    f"(learned cardinalities)"
                )
        return "; ".join(parts)


@dataclass
class PlanState:
    """Everything one submission carries between pipeline stages."""

    query: Union[str, ast.Statement]
    #: human-readable label (the SQL text) for the query context
    label: str = ""
    #: the next stage to run — re-entry resets this to an earlier one
    stage: str = "parse"
    #: remaining repair budget (outage / drift / adaptation re-entries)
    budget: int = 0
    #: remaining *branch*-scoped recovery budget — spent on in-place
    #: branch failover / shard quarantine / partial degradation, kept
    #: separate so branch repairs never eat the whole-query budget
    branch_budget: int = 0
    select: Optional[ast.Statement] = None
    logical_plan: Optional[algebra.LogicalPlan] = None
    annotation: Optional[Annotation] = None
    dplan: Optional[DelegationPlan] = None
    deployed: Optional[DeployedQuery] = None
    result: Optional[Result] = None
    schedule: Optional[ScheduleResult] = None
    recovery: RecoveryReport = field(default_factory=RecoveryReport)
    #: one adaptation round per submission (guards the Q-Error loop)
    adapted: bool = False
    #: (db, kind, name) materializations kept across an adaptation,
    #: awaiting re-fencing under the adapted deployment's epoch
    pending_keeps: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Q-Error observations harvested from the execution
    observations: List[Observation] = field(default_factory=list)
    exec_seconds: float = 0.0
    transfers: Optional[TransferSummary] = None
    admitted_engines: List[str] = field(default_factory=list)


class PlanPipeline:
    """Drives a :class:`PlanState` through the planning stages.

    Owns the one and only annotate/finalize repair loop; ``XDB.submit``,
    drift recovery, mid-query adaptation, and prepared-query replans
    all re-enter the pipeline at a stage instead of duplicating it.
    """

    def __init__(
        self,
        deployment: Deployment,
        catalog: GlobalCatalog,
        optimizer: LogicalOptimizer,
        annotator: PlanAnnotator,
        finalizer: PlanFinalizer,
        delegator: DelegationEngine,
        repair_budget: int = 2,
        branch_repair_budget: int = 2,
        feedback: Optional[FeedbackStore] = None,
        adaptivity_threshold: Optional[float] = None,
        on_drift: Optional[Callable[[str, str], None]] = None,
    ):
        self.deployment = deployment
        self.connectors = deployment.connectors
        self.catalog = catalog
        self.optimizer = optimizer
        self.annotator = annotator
        self.finalizer = finalizer
        self.delegator = delegator
        self.repair_budget = repair_budget
        #: budget for branch-scoped recoveries (failover / partial),
        #: spent independently of the whole-query ``repair_budget``
        self.branch_repair_budget = branch_repair_budget
        #: the persistent Q-Error feedback store (None = loop disabled)
        self.feedback = feedback
        #: Q-Error above which a materialized task boundary triggers a
        #: mid-query suffix replan (None = adaptivity disabled)
        self.adaptivity_threshold = adaptivity_threshold
        #: callback(db, table) on drift re-introspection — the client
        #: invalidates prepared handles scanning the table
        self.on_drift = on_drift
        self.metadata_fresh = False

    # -- state construction ------------------------------------------------

    def new_state(
        self, query: Union[str, ast.Statement], budget: Optional[int] = None
    ) -> PlanState:
        return PlanState(
            query=query,
            label=self.label_of(query),
            budget=self.repair_budget if budget is None else budget,
            branch_budget=self.branch_repair_budget,
        )

    @staticmethod
    def label_of(query: Union[str, ast.Statement]) -> str:
        """The query's SQL text, for trace labels and jitter seeding.

        AST submissions used to label their spans ``"<ast>"``; now they
        render back to SQL so traces stay readable (the literal
        ``"<ast>"`` survives only as the fallback for unrenderable
        statements).
        """
        if isinstance(query, str):
            return query
        try:
            return render(query)
        except ReproError:
            return "<ast>"

    @staticmethod
    def parse(query: Union[str, ast.Statement]) -> ast.Statement:
        if isinstance(query, ast.QUERY_STATEMENTS):
            return query
        statement = parse_statement(query)
        if not isinstance(statement, ast.QUERY_STATEMENTS):
            raise OptimizerError(
                "XDB accepts analytical SELECT / UNION ALL queries only"
            )
        return statement

    # -- stage plumbing ----------------------------------------------------

    @staticmethod
    def _step(tracer, name: str):
        """A step span when tracing, a no-op otherwise — so the traced
        and offline paths share one stage body."""
        if tracer is None:
            return contextlib.nullcontext()
        return tracer.span(name, kind="step")

    def _annotate_finalize(self, state: PlanState, tracer=None) -> None:
        """THE annotate+finalize body — every caller re-enters here."""
        with self._step(tracer, "annotate"):
            state.annotation = self.annotator.annotate(state.logical_plan)
        with self._step(tracer, "finalize"):
            state.dplan = self.finalizer.finalize(
                state.logical_plan, state.annotation
            )
        state.stage = "delegate"

    def _annotate_with_repair(
        self, state: PlanState, tracer, phase: str = "ann"
    ) -> None:
        """Annotate+finalize with the outage-repair loop around it."""
        health = self.deployment.health
        while True:
            try:
                self._annotate_finalize(state, tracer)
                return
            except EngineUnavailableError as exc:
                db = self.unavailable_db(exc)
                if db is None or state.budget <= 0:
                    raise
                state.budget -= 1
                state.recovery.repair_attempts += 1
                state.recovery.repaired_dbs.append(db)
                tracer.add_event("repair", db=db, phase=phase)
                health.report_outage(
                    db, "annotation-time consultation failed"
                )

    # -- planning ----------------------------------------------------------

    def plan(
        self,
        state: PlanState,
        ctx: QueryContext,
        refresh_metadata: bool = False,
    ):
        """Run the planning stages under ``ctx``'s tracer.

        Returns the (prep, lopt, ann) phase spans for the report's
        phase breakdown.  Stages the state already passed are skipped,
        so a re-entered state resumes where it was reset to.
        """
        tracer = ctx.tracer

        with tracer.span("prep", kind="phase") as prep_span:
            ctx.enter_phase("prep")
            if _stage_index(state.stage) <= _stage_index("parse"):
                with tracer.span("parse", kind="step"):
                    state.select = self.parse(state.query)
                state.stage = "catalog"
            if _stage_index(state.stage) <= _stage_index("catalog"):
                if refresh_metadata or not self.metadata_fresh:
                    with tracer.span("catalog-refresh", kind="step"):
                        self.catalog.refresh()
                    self.metadata_fresh = True
                state.stage = "optimize"

        with tracer.span("lopt", kind="phase") as lopt_span:
            ctx.enter_phase("lopt")
            if _stage_index(state.stage) <= _stage_index("optimize"):
                with tracer.span("optimize", kind="step"):
                    state.logical_plan = self.optimizer.optimize(
                        state.select
                    )
                state.stage = "annotate"

        with tracer.span("ann", kind="phase") as ann_span:
            ctx.enter_phase("ann")
            if _stage_index(state.stage) <= _stage_index("finalize"):
                self._annotate_with_repair(state, tracer, phase="ann")
            state.recovery.placement_before = self.placement(state.dplan)

        return prep_span, lopt_span, ann_span

    def plan_offline(
        self, state: PlanState, refresh_metadata: bool = False
    ) -> PlanState:
        """Run the planning stages without a query context.

        Used by ``explain`` / ``plan_query`` / ``prepare`` (from the
        ``parse`` stage) and by prepared-query replans (re-entry at
        ``optimize``, which correctly skips the catalog refresh).  No
        repair loop: offline planning propagates the first failure.
        """
        if _stage_index(state.stage) <= _stage_index("parse"):
            state.select = self.parse(state.query)
            state.stage = "catalog"
        if _stage_index(state.stage) <= _stage_index("catalog"):
            if refresh_metadata or not self.metadata_fresh:
                self.catalog.refresh()
                self.metadata_fresh = True
            state.stage = "optimize"
        if _stage_index(state.stage) <= _stage_index("optimize"):
            state.logical_plan = self.optimizer.optimize(state.select)
            state.stage = "annotate"
        if _stage_index(state.stage) <= _stage_index("finalize"):
            self._annotate_finalize(state, None)
        return state

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        state: PlanState,
        ctx: QueryContext,
        cleanup: bool = True,
        qos: Optional[QoSPolicy] = None,
    ) -> PlanState:
        """Delegate and execute the planned state (the exec phase).

        Self-healing re-enters earlier stages in place: an outage
        re-annotates, drift re-optimizes, and a blown estimate pins the
        materialized producers and re-annotates the suffix — all within
        ``state.budget``.
        """
        network = self.deployment.network
        health = self.deployment.health
        gate = self.deployment.workload_gate
        priority = qos.priority if qos is not None else PRIORITY_NORMAL
        tracer = ctx.tracer
        recovery = state.recovery

        lease = None
        deployed = None
        try:
            with tracer.span("exec", kind="phase") as exec_span:
                repair_start: Optional[Tuple[float, float]] = None
                while True:
                    deployed = None
                    state.deployed = None
                    try:
                        if state.dplan is None:
                            # Re-enter at the annotate stage: the
                            # annotator now sees the open breaker (or
                            # the pinned plan), so replicated tables
                            # land on a healthy holder and Rule 4 drops
                            # the dead candidate.
                            self._annotate_finalize(state, tracer)
                        dplan = state.dplan
                        # Lazy drift verification: once per table per
                        # catalog epoch.  A refresh pre-marks everything
                        # it read, so the common case is an empty list —
                        # no span, no engine calls.
                        pending = self.catalog.unverified(
                            self.placement(dplan)
                        )
                        if pending:
                            with tracer.span("verify", kind="step"):
                                for vdb, vtable in pending:
                                    self.catalog.verify_table(vdb, vtable)
                        engines = sorted(
                            {
                                task.annotation
                                for task in dplan.tasks.values()
                            }
                        )
                        if lease is not None and set(lease.engines) != set(
                            engines
                        ):
                            # The repaired plan routes around the outage
                            # onto a different engine set: swap the
                            # admission tokens to match.
                            lease.release()
                            lease = None
                        if lease is None:
                            ctx.enter_phase("admission")
                            with tracer.span("admit", kind="step"):
                                lease = gate.acquire(
                                    engines,
                                    priority=priority,
                                    deadline=ctx.deadline,
                                )
                                ctx.record_admission(lease)
                        # Straggler hedging is pure overhead on a
                        # saturated federation: the capacity probe here
                        # decides whether the execution layer may launch
                        # speculative duplicates at all.
                        ctx.hedge_multiplier = (
                            qos.hedge_multiplier if qos is not None else None
                        )
                        ctx.hedging_allowed = gate.allow_hedge(engines)
                        ctx.enter_phase("delegate")
                        with tracer.span("delegate", kind="step"):
                            # With branch budget left, a mid-cascade
                            # failure salvages the completed sibling
                            # snapshots instead of rolling them back —
                            # branch recovery pins them in place.
                            deployed = self.delegator.delegate(
                                dplan, salvage=state.branch_budget > 0
                            )
                        state.deployed = deployed
                        if state.pending_keeps:
                            self._refence_keeps(state, deployed)
                        if (
                            self.adaptivity_threshold is not None
                            and not state.adapted
                            and self._maybe_adapt(
                                state, deployed, exec_span, tracer
                            )
                        ):
                            # Blown estimate: the materialized producers
                            # are pinned and the suffix re-enters at
                            # annotate.  The old cascade (minus keeps)
                            # is already torn down.
                            deployed = None
                            state.deployed = None
                            continue
                        root_connector = self.connectors[deployed.root_db]
                        ctx.enter_phase("execute")
                        with tracer.span("execute", kind="step"):
                            result = root_connector.run_query(
                                deployed.xdb_query,
                                self.deployment.client_node,
                            )
                        if ctx.deadline is not None:
                            # A result that lands after the deadline is
                            # a miss, not a success: cancel it.
                            ctx.deadline.check(
                                "execute", detail="post-execution"
                            )
                        state.result = result
                        break
                    except SchemaDriftError as drift:
                        if state.budget <= 0:
                            raise
                        state.budget -= 1
                        if repair_start is None:
                            repair_start = (wall_now(), tracer.sim_now)
                        if deployed is not None:
                            try:
                                deployed.cleanup()
                            except ReproError:
                                pass
                        self.recover_drift(state, drift, tracer)
                        state.dplan = None
                    except (
                        EngineUnavailableError,
                        DelegationError,
                    ) as exc:
                        # A delegation failure whose cause chain is
                        # schema-shaped (bind/type/catalog) may be a
                        # drifted remote table rather than an outage:
                        # force-verify the placed tables and, if one
                        # drifted, take the drift recovery path instead
                        # of plan repair.
                        drift = self.sniff_drift(exc, state.dplan)
                        if drift is not None:
                            if state.budget <= 0:
                                raise drift from exc
                            state.budget -= 1
                            if repair_start is None:
                                repair_start = (
                                    wall_now(),
                                    tracer.sim_now,
                                )
                            if deployed is not None:
                                try:
                                    deployed.cleanup()
                                except ReproError:
                                    pass
                            self.recover_drift(state, drift, tracer)
                            state.dplan = None
                            continue
                        # Branch-scoped recovery first: a shard-level
                        # fault (or an engine fault that left completed
                        # sibling snapshots to pin) is repaired *in
                        # place* — quarantine/re-route only the failed
                        # branch, keep the finished work.  Falls through
                        # to the whole-query repair when it cannot help.
                        if self._branch_recover(
                            state, exc, deployed, qos, tracer
                        ):
                            if repair_start is None:
                                repair_start = (wall_now(), tracer.sim_now)
                            deployed = None
                            state.deployed = None
                            continue
                        db = self.unavailable_db(exc)
                        if db is None or state.budget <= 0:
                            self._abandon_salvage(state, exc, tracer)
                            raise
                        state.budget -= 1
                        recovery.repair_attempts += 1
                        recovery.repaired_dbs.append(db)
                        if repair_start is None:
                            repair_start = (wall_now(), tracer.sim_now)
                        tracer.add_event("repair", db=db, phase="exec")
                        # Trip the breaker FIRST so the best-effort
                        # cleanup of the partial deployment fails fast
                        # on the dead engine instead of burning its
                        # retry budget per object.
                        health.report_outage(db, "execution failed")
                        if deployed is not None:
                            try:
                                deployed.cleanup()
                            except ReproError:
                                pass
                        # Whole-query repair cannot reuse salvaged
                        # snapshots or earlier pins (they may live on
                        # the dead engine): drop them and rebuild the
                        # plan from the source query.
                        self._abandon_salvage(
                            state, exc, tracer, skip_db=db
                        )
                        state.dplan = None
                    except (
                        BindError,
                        TypeCheckError,
                        CatalogError,
                    ) as exc:
                        # The root XDB query can hit the drifted table
                        # directly (no DDL cascade to wrap the failure
                        # in a DelegationError): a raw bind/type/catalog
                        # error here gets the same sniff before
                        # propagating.
                        drift = self.sniff_drift(exc, state.dplan)
                        if drift is None or state.budget <= 0:
                            raise
                        state.budget -= 1
                        if repair_start is None:
                            repair_start = (wall_now(), tracer.sim_now)
                        if deployed is not None:
                            try:
                                deployed.cleanup()
                            except ReproError:
                                pass
                        self.recover_drift(state, drift, tracer)
                        state.dplan = None
                if repair_start is not None:
                    repair_wall, repair_sim = repair_start
                    recovery.repair_seconds = (
                        wall_now() - repair_wall
                    ) + (tracer.sim_now - repair_sim)
                recovery.placement = self.placement(state.dplan)
                attribute_edge_stats(
                    deployed, exec_span.subtree_records()
                )
                with tracer.span("schedule", kind="step"):
                    schedule = simulate_schedule(
                        deployed,
                        self.connectors,
                        network,
                        self.deployment.client_node,
                        result_bytes=result.byte_size(),
                        worker_slots=_slots(self.deployment),
                    )
                state.schedule = schedule
                # Harvest the Q-Error observations while the span tree
                # still has the operator spans at hand.  Observations
                # ride on every report (explain_analyze's Q-Error
                # column); they persist only when a store is wired.
                state.observations = harvest_execution(
                    state.dplan,
                    exec_span,
                    self.catalog,
                    len(result.rows),
                )
                if self.feedback is not None and state.observations:
                    with tracer.span("harvest", kind="step"):
                        self.feedback.observe_many(state.observations)

            # Middleware CPU during exec is not on the critical path
            # (the DBMSes run decentrally); control messages are, and
            # so are simulated retry backoff spent on the DDL cascade
            # and any repair-time re-consultations — all read off the
            # exec span's subtree.
            state.exec_seconds = (
                schedule.total_seconds
                + ctx.control_seconds(exec_span)
                + ctx.backoff_in(exec_span)
            )
            state.transfers = ctx.transfer_summary(exec_span)
            recovery.breaker_transitions = list(ctx.breaker_events)

            # Cleanup runs outside the exec span (its drops are not
            # part of the execution window's transfer summary) but
            # still under the admission lease, and — with a deadline —
            # under the grace budget, so a query that *met* its
            # deadline cannot fail while tearing itself down.
            ctx.current_phase = "cleanup"
            if cleanup:
                if ctx.deadline is not None:
                    with ctx.deadline.grace():
                        deployed.cleanup()
                else:
                    deployed.cleanup()
        except DeadlineExceeded as exc:
            self.cancel_deployment(ctx, deployed, exc)
            raise
        finally:
            if lease is not None:
                state.admitted_engines = list(lease.engines)
                lease.release()
        return state

    # -- drift recovery ----------------------------------------------------

    def recover_drift(
        self, state: PlanState, drift: SchemaDriftError, tracer
    ) -> None:
        """Absorb one detected drift: re-introspect, invalidate, replan.

        Re-enters the pipeline at the ``optimize`` stage (the plan must
        be rebuilt from the source query against the adopted schema).
        When replanning still fails — e.g. a drifted replica now
        diverges from its siblings, or the table vanished and only this
        holder had it — the table is quarantined (placement avoids it
        like a dead holder) and the replan is retried once; a second
        failure propagates.
        """
        recovery = state.recovery
        recovery.drift_events += 1
        key = (drift.db, drift.table)
        if key not in recovery.drifted_tables:
            recovery.drifted_tables.append(key)
        tracer.add_event(
            "schema-drift",
            db=drift.db,
            table=drift.table,
            diff=drift.diff_summary(),
        )
        with tracer.span("reintrospect", kind="step"):
            adopted = self.catalog.reintrospect(drift.db, drift.table)
        if self.feedback is not None:
            # Learned cardinalities observed under the old schema are
            # as stale as the plans built on them.
            self.feedback.invalidate_table(drift.db, drift.table)
        if self.on_drift is not None:
            self.on_drift(drift.db, drift.table)
        state.stage = "optimize"
        try:
            with tracer.span("optimize", kind="step"):
                state.logical_plan = self.optimizer.optimize(state.select)
            state.stage = "annotate"
        except ReproError:
            if adopted is not None:
                self.catalog.quarantine(drift.db, drift.table)
            recovery.quarantined.append(key)
            tracer.add_event("quarantine", db=drift.db, table=drift.table)
            try:
                with tracer.span("optimize", kind="step"):
                    state.logical_plan = self.optimizer.optimize(
                        state.select
                    )
                state.stage = "annotate"
            except ReproError as replan_exc:
                # Even with the drifted holder out of the way the query
                # cannot bind (the table vanished everywhere, or it
                # referenced a now-renamed column): surface the
                # structured drift error, not the planner's.
                drift.quarantined = True
                raise drift from replan_exc

    def sniff_drift(
        self, exc: BaseException, dplan: Optional[DelegationPlan]
    ) -> Optional[SchemaDriftError]:
        """Check whether a schema-shaped failure traces back to drift.

        Only failures whose cause chain contains a bind/type/catalog
        error are sniffed — transient giveups and outages never touch
        the fingerprint path, so their fault schedules are unchanged.
        The sniff force-verifies each placed table and returns the
        first drift found (None when the schemas all still match).
        """
        if dplan is None or not self._schema_shaped(exc):
            return None
        for table, db in sorted(self.placement(dplan).items()):
            try:
                self.catalog.verify_table(db, table, force=True)
            except SchemaDriftError as drift:
                return drift
            except ReproError:
                continue
        return None

    @staticmethod
    def _schema_shaped(exc: BaseException) -> bool:
        """Whether a failure's cause chain smells like schema drift."""
        seen = set()
        node: Optional[BaseException] = exc
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if isinstance(
                node, (BindError, TypeCheckError, CatalogError)
            ):
                return True
            node = node.__cause__ or node.__context__
        return False

    # -- mid-query adaptivity (the Q-Error loop's fast path) ---------------

    def _maybe_adapt(
        self,
        state: PlanState,
        deployed: DeployedQuery,
        exec_span,
        tracer,
    ) -> bool:
        """Suffix replan at the materialization boundary, if warranted.

        Delegation already ran every explicit edge's CTAS, so the rows
        that actually crossed those task boundaries are known *before*
        the root XDB query runs — the paper-world analogue of a task
        boundary mid-query.  When a materialized producer's actual
        cardinality blows its estimate past the adaptivity threshold,
        the producers are **pinned**: their logical subtrees are
        replaced by scans of the existing ``xm_`` snapshots (executed
        work is never redone), and the unexecuted suffix re-enters the
        pipeline at the annotate stage with corrected cardinalities.

        Returns True when the state was re-entered (caller loops);
        False to proceed with the current deployment.
        """
        state.adapted = True  # one adaptation round per submission
        dplan = state.dplan
        threshold = self.adaptivity_threshold
        # The CTAS fetches were recorded inside the delegate step — the
        # exec span's subtree already carries the explicit-edge actuals.
        attribute_edge_stats(deployed, exec_span.subtree_records())

        blown: List[Tuple[int, float]] = []
        candidates = []
        for edge in dplan.edges:
            if edge.movement is not Movement.EXPLICIT:
                continue
            if not edge.moved_rows or edge.moved_rows <= 0:
                continue
            producer = dplan.tasks[edge.producer_id]
            src = producer.source_expr
            if src is None:
                continue
            # A producer whose output needed the finalizer's dedup
            # projection has snapshot columns that no longer match its
            # logical schema — leave it to be recomputed.
            names = [f.name.lower() for f in src.schema]
            if len(set(names)) != len(names):
                continue
            actual = float(edge.moved_rows)
            q = qerror.q_error(producer.estimated_rows, actual)
            candidates.append((edge, producer, actual, q))
            if q > threshold:
                blown.append((producer.task_id, q))
        if not blown:
            return False

        plan = state.logical_plan
        keeps: List[Tuple[str, str, str]] = []
        overlay = FeedbackOverlay(self.feedback)
        pinned_ids: List[int] = []
        for edge, producer, actual, _q in candidates:
            consumer = dplan.tasks[edge.consumer_id]
            xm_name = f"xm_{deployed.query_id}_{producer.task_id}"
            pinned = algebra.Scan(
                table=xm_name,
                binding=f"xpin_{producer.task_id}",
                schema=producer.source_expr.schema,
                source_db=consumer.annotation,
                placeholder=True,
                requalify=False,
            )
            pinned.estimated_rows = actual
            plan, replaced = _replace_subtree(
                plan, producer.source_expr, pinned
            )
            if not replaced:
                # Nested producer already covered by an ancestor's pin.
                continue
            keeps.append((consumer.annotation, "TABLE", xm_name))
            overlay.pin(overlay.fingerprint_of(producer.source_expr), actual)
            pinned_ids.append(producer.task_id)
        if not keeps:
            return False

        with tracer.span("adapt", kind="step"):
            for task_id, q in blown:
                tracer.add_event(
                    "estimate-blown",
                    task=task_id,
                    qerror=(-1.0 if q == qerror.INFINITE else round(q, 3)),
                )
            # The rebuilt ancestors lost their estimates and Rule 4
            # requires one on every node: a fresh estimator pass over
            # the pinned plan recomputes them — the pinned scans feed
            # their *actual* row counts in, and the overlay folds in
            # any store-learned corrections for untouched subtrees.
            estimator = CardinalityEstimator(
                self.catalog.scan_stats, feedback=overlay
            )
            _annotate_all(plan, estimator)
            recovery = state.recovery
            recovery.adaptations += 1
            recovery.blown_estimates.extend(blown)
            recovery.pinned_tasks.extend(pinned_ids)
            state.logical_plan = plan
            state.dplan = None
            state.stage = "annotate"
            state.pending_keeps = keeps
            # Release the kept snapshots from the old cascade, then
            # tear the rest of it down (the new suffix deployment gets
            # fresh names under a fresh epoch, so nothing collides).
            keep_set = set(keeps)
            deployed.created_objects[:] = [
                obj
                for obj in deployed.created_objects
                if obj not in keep_set
            ]
            try:
                deployed.cleanup()
            except ReproError:
                pass
        return True

    def _refence_keeps(
        self, state: PlanState, deployed: DeployedQuery
    ) -> None:
        """Adopt kept snapshots into the adapted deployment.

        The old epoch closed when the superseded cascade tore down, so
        the kept ``xm_`` tables were momentarily reapable; re-recording
        them under the new deployment's (live) epoch fences them again,
        and prepending them to ``created_objects`` makes the final
        cleanup drop them last (consumers before producers).
        """
        for keep in state.pending_keeps:
            db, kind, name = keep
            deployed.created_objects.insert(0, keep)
            if deployed.ledger is not None:
                deployed.ledger.record(db, kind, name, deployed.epoch)
        state.pending_keeps = []

    # -- branch-scoped fault domains ---------------------------------------

    def _branch_recover(
        self,
        state: PlanState,
        exc: BaseException,
        deployed: Optional[DeployedQuery],
        qos: Optional[QoSPolicy],
        tracer,
    ) -> bool:
        """Repair a failed *branch* in place instead of the whole query.

        Two failure domains below the query qualify:

        * a **shard-scoped** fault (the error chain carries the struck
          table): the one holder is quarantined — the engine's breaker
          stays closed — and the branch re-routes to a surviving
          replica holder on re-annotation; with no healthy holder left,
          the query degrades to a policy-bounded **partial** answer;
        * an **engine** fault that left completed sibling ``xm_``
          snapshots behind: the siblings are pinned (executed work is
          never redone) and only the failed branch re-plans around the
          outage.

        Salvaged snapshots ride in on the :class:`DelegationError` and
        are pinned exactly like the adaptivity path's keeps.  Returns
        True when the state was re-entered at ``annotate`` (the caller
        loops); False hands the failure to the whole-query repair.
        """
        if state.branch_budget <= 0 or state.dplan is None:
            return False
        recovery = state.recovery
        health = self.deployment.health
        shard_db, shard = self._fault_shard(exc)
        salvaged = self._salvage_of(exc)
        if shard is not None:
            if shard_db is not None and not self.catalog.is_quarantined(
                shard_db, shard
            ):
                # The disk under one shard died, not the server: only
                # that holder leaves placement, via quarantine — never
                # the breaker.
                self.catalog.quarantine(shard_db, shard)
                recovery.quarantined.append((shard_db, shard))
                health.report_shard_outage(
                    shard_db, shard, "branch execution failed"
                )
                tracer.add_event(
                    "shard-quarantine", db=shard_db, table=shard
                )
            healthy = [
                db
                for db in self.catalog.holders(shard)
                if not self.catalog.is_quarantined(db, shard)
                and self._holder_available(db)
            ]
            if healthy:
                action = "failover"
            elif self._try_partial(state, shard, qos, tracer):
                action = "partial"
            else:
                return False
            blamed = shard_db or ""
        else:
            # Engine-level failure: branch-local recovery only pays off
            # when completed sibling snapshots exist to pin; otherwise
            # the whole-query repair path does the identical work.
            blamed = self.unavailable_db(exc)
            if not salvaged or blamed is None:
                return False
            health.report_outage(blamed, "branch execution failed")
            action = "reroute"
        pinned = self._pin_salvage(state, salvaged)
        if deployed is not None:
            keep_set = set(state.pending_keeps)
            deployed.created_objects[:] = [
                obj
                for obj in deployed.created_objects
                if obj not in keep_set
            ]
            try:
                deployed.cleanup()
            except ReproError:
                pass
        state.branch_budget -= 1
        recovery.branch_repairs += 1
        recovery.branch_events.append((action, blamed, shard or ""))
        tracer.add_event(
            "branch-repair",
            action=action,
            db=blamed,
            table=shard or "",
            pinned=len(pinned),
        )
        state.dplan = None
        state.stage = "annotate"
        return True

    def _try_partial(
        self,
        state: PlanState,
        shard: str,
        qos: Optional[QoSPolicy],
        tracer,
    ) -> bool:
        """Degrade to a partial answer by pruning a dead shard's branch.

        Opt-in via ``QoSPolicy.allow_partial``: when the shard has no
        healthy holder left, its gather branches are pruned and the
        row-weighted completeness (from catalog shard statistics) is
        checked against the policy's ``completeness_floor``.  Returns
        True when the plan was degraded in place.
        """
        if qos is None or not qos.allow_partial:
            return False
        if not is_partition_table(shard):
            return False
        plan, pruned = prune_missing_shards(state.logical_plan, [shard])
        if plan is None or not pruned:
            return False
        recovery = state.recovery
        missing = list(recovery.missing_partitions)
        for name in pruned:
            if name not in missing:
                missing.append(name)
        completeness = partition_completeness(
            missing, self.catalog.partition_spec, self._shard_rows
        )
        if completeness < qos.completeness_floor:
            tracer.add_event(
                "partial-refused",
                table=shard,
                completeness=round(completeness, 4),
                floor=qos.completeness_floor,
            )
            return False
        estimator = CardinalityEstimator(
            self.catalog.scan_stats, feedback=FeedbackOverlay(self.feedback)
        )
        _annotate_all(plan, estimator)
        state.logical_plan = plan
        recovery.partial = True
        recovery.completeness = completeness
        recovery.missing_partitions = missing
        tracer.add_event(
            "partial-degrade",
            table=shard,
            completeness=round(completeness, 4),
            missing=len(missing),
        )
        return True

    def _pin_salvage(self, state: PlanState, salvaged) -> List[int]:
        """Pin salvaged ``xm_`` snapshots into the logical plan.

        The branch-recovery twin of :meth:`_maybe_adapt`'s pinning:
        each salvaged producer's subtree becomes a placeholder scan of
        its existing snapshot, so re-delegation recomputes only the
        failed branch.  Snapshots that cannot be pinned (producer
        already covered by an ancestor's pin, or its output needed the
        finalizer's dedup projection) are dropped best-effort instead
        of leaking.
        """
        if not salvaged or state.dplan is None:
            return []
        dplan = state.dplan
        plan = state.logical_plan
        overlay = FeedbackOverlay(self.feedback)
        keeps: List[Tuple[str, str, str]] = []
        pinned_ids: List[int] = []
        unusable: List[Tuple[str, str, str]] = []
        for task_id, db, kind, name in salvaged:
            producer = dplan.tasks.get(task_id)
            src = producer.source_expr if producer is not None else None
            usable = src is not None
            if usable:
                names = [f.name.lower() for f in src.schema]
                usable = len(set(names)) == len(names)
            if usable:
                actual = None
                for edge in dplan.edges:
                    if edge.producer_id == task_id and edge.moved_rows:
                        actual = float(edge.moved_rows)
                        break
                pinned = algebra.Scan(
                    table=name,
                    binding=f"xpin_{task_id}",
                    schema=src.schema,
                    source_db=db,
                    placeholder=True,
                    requalify=False,
                )
                pinned.estimated_rows = (
                    actual
                    if actual is not None
                    else float(producer.estimated_rows or 1.0)
                )
                plan, replaced = _replace_subtree(plan, src, pinned)
                usable = replaced
                if replaced:
                    keeps.append((db, "TABLE", name))
                    pinned_ids.append(task_id)
                    if actual is not None:
                        overlay.pin(
                            overlay.fingerprint_of(src), actual
                        )
            if not usable:
                unusable.append((db, kind, name))
        if unusable:
            self._drop_objects(unusable)
        if keeps:
            estimator = CardinalityEstimator(
                self.catalog.scan_stats, feedback=overlay
            )
            _annotate_all(plan, estimator)
            state.logical_plan = plan
            state.pending_keeps.extend(keeps)
            state.recovery.pinned_tasks.extend(pinned_ids)
        return pinned_ids

    def _abandon_salvage(
        self,
        state: PlanState,
        exc: BaseException,
        tracer,
        skip_db: Optional[str] = None,
    ) -> None:
        """Drop salvage the recovery path cannot use (best effort).

        Whole-query repair (and final propagation) rebuilds the plan
        from scratch, so salvaged snapshots and earlier pins would
        otherwise leak under their closed epoch until the reaper finds
        them.  ``skip_db`` marks an engine known to be down — its
        objects are left for the reaper rather than burning the retry
        budget.  Abandoning pins also rebuilds the logical plan from
        the source query (re-applying any partial-answer pruning), so
        placeholder scans of dropped snapshots cannot survive into the
        next annotation round.
        """
        objects = [
            (db, kind, name)
            for _task_id, db, kind, name in self._salvage_of(exc)
        ]
        objects.extend(state.pending_keeps)
        had_pins = bool(state.pending_keeps)
        state.pending_keeps = []
        if objects:
            self._drop_objects(objects, skip_db=skip_db)
            tracer.add_event("salvage-abandoned", objects=len(objects))
        if had_pins and state.select is not None:
            try:
                state.logical_plan = self.optimizer.optimize(state.select)
                if state.recovery.missing_partitions:
                    plan, _ = prune_missing_shards(
                        state.logical_plan,
                        state.recovery.missing_partitions,
                    )
                    if plan is not None:
                        estimator = CardinalityEstimator(
                            self.catalog.scan_stats,
                            feedback=FeedbackOverlay(self.feedback),
                        )
                        _annotate_all(plan, estimator)
                        state.logical_plan = plan
            except ReproError:
                pass

    def _drop_objects(
        self,
        objects: List[Tuple[str, str, str]],
        skip_db: Optional[str] = None,
    ) -> None:
        """Best-effort DROPs, newest first; failures go to the reaper."""
        for db, kind, name in reversed(list(objects)):
            connector = self.connectors.get(db)
            if connector is None or db == skip_db:
                continue
            try:
                connector.execute_ddl(
                    ast.DropObject(kind=kind, name=name, if_exists=True)
                )
            except ReproError:
                pass

    def _holder_available(self, db: str) -> bool:
        connector = self.connectors.get(db)
        return connector is not None and connector.is_available()

    def _shard_rows(self, shard: str) -> Optional[int]:
        """Catalog row count of one shard (any holder; None = unknown)."""
        for db in self.catalog.holders(shard):
            stats = self.catalog.stats_of(db, shard)
            if stats is not None and stats.row_count is not None:
                return int(stats.row_count)
        return None

    @staticmethod
    def _fault_shard(
        exc: BaseException,
    ) -> Tuple[Optional[str], Optional[str]]:
        """The (db, table) a shard-scoped outage blames, if any.

        Walks the cause chain like :meth:`unavailable_db`; ``db`` may
        be None (annotation found no healthy holder at all) while
        ``table`` still names the shard.
        """
        seen = set()
        node: Optional[BaseException] = exc
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if (
                isinstance(node, EngineUnavailableError)
                and node.table is not None
            ):
                return node.db, node.table
            node = node.__cause__ or node.__context__
        return None, None

    @staticmethod
    def _salvage_of(
        exc: BaseException,
    ) -> List[Tuple[int, str, str, str]]:
        """Salvaged snapshots riding on a delegation failure's chain."""
        seen = set()
        node: Optional[BaseException] = exc
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if isinstance(node, DelegationError) and node.salvaged:
                return list(node.salvaged)
            node = node.__cause__ or node.__context__
        return []

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def placement(dplan: Optional[DelegationPlan]) -> Dict[str, str]:
        """Base table → DBMS map for the recovery placement diff.

        Keyed by scanned table rather than task: a repaired plan may
        merge or split tasks (co-location changes when a replica holder
        takes over), so task identities do not survive re-planning but
        table names do.
        """
        placement: Dict[str, str] = {}
        if dplan is None:
            return placement
        for task in dplan.tasks.values():
            for scan in task.expr.leaves():
                if not scan.placeholder:
                    placement[scan.table] = task.annotation
        return placement

    @staticmethod
    def unavailable_db(exc: BaseException) -> Optional[str]:
        """Which DBMS an outage exception blames, if repairable.

        Walks the ``__cause__``/``__context__`` chain for an
        :class:`EngineUnavailableError` carrying a DBMS name (a
        :class:`DelegationError` wraps the original connector error).
        Returns None for unrepairable failures: an
        ``EngineUnavailableError`` with ``db=None`` means every holder
        of some table is down, and a failure with *no* engine-outage in
        its chain (e.g. a transient fault that exhausted the retry
        budget) is not an outage — re-planning cannot help either way.
        """
        seen = set()
        node: Optional[BaseException] = exc
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            if isinstance(node, EngineUnavailableError):
                return node.db
            node = node.__cause__ or node.__context__
        return None

    @staticmethod
    def cancel_deployment(
        ctx: QueryContext,
        deployed: Optional[DeployedQuery],
        exc: DeadlineExceeded,
    ) -> None:
        """Cooperative cancellation: tear down a deployed cascade after
        deadline expiry, under the grace budget, and fold the rollback
        accounting into the structured error.

        ``deployed`` is None when the expiry struck *inside* the
        delegation engine — that path already rolled itself back and
        stamped the error; here we only handle expiry after delegation
        completed (during execution or post-execution checks).
        """
        if deployed is None:
            return
        before = list(deployed.created_objects)
        try:
            if ctx.deadline is not None:
                with ctx.deadline.grace():
                    deployed.cleanup()
            else:
                deployed.cleanup()
        except ReproError:
            # cleanup() already kept the undropped objects queued; the
            # leak accounting below reads them off the deployment.
            pass
        remaining = list(deployed.created_objects)
        exc.rolled_back = list(exc.rolled_back) + [
            obj for obj in before if obj not in remaining
        ]
        exc.leaked = list(exc.leaked) + remaining
        ctx.tracer.add_event(
            "deadline-cancelled",
            phase=exc.phase,
            rolled_back=len(exc.rolled_back),
            leaked=len(exc.leaked),
        )


def _slots(deployment: Deployment) -> Optional[int]:
    """Per-engine task slots for the schedule simulator.

    A single-worker deployment keeps the legacy unbounded-overlap
    semantics (None); only explicit multi-worker engines cap how many
    delegated tasks one engine advances concurrently.
    """
    workers = deployment.parallel_workers
    return workers if workers > 1 else None


def _annotate_all(
    plan: algebra.LogicalPlan, estimator: CardinalityEstimator
) -> None:
    estimator.estimate_rows(plan)
    for child in plan.children():
        _annotate_all(child, estimator)


def _replace_subtree(
    root: algebra.LogicalPlan,
    target: algebra.LogicalPlan,
    replacement: algebra.LogicalPlan,
) -> Tuple[algebra.LogicalPlan, bool]:
    """Replace ``target`` (by identity) inside ``root``.

    Returns ``(new_root, replaced)``; the tree is returned unchanged
    when ``target`` does not occur (e.g. it lived inside a subtree an
    earlier replacement already swapped out).
    """
    if root is target:
        return replacement, True
    children = root.children()
    if not children:
        return root, False
    new_children = []
    replaced = False
    for child in children:
        new_child, hit = _replace_subtree(child, target, replacement)
        new_children.append(new_child)
        replaced = replaced or hit
    if not replaced:
        return root, False
    return root.with_children(new_children), True
