"""Plan visualization: Graphviz DOT export and a networkx bridge.

``delegation_plan_to_dot`` renders the task DAG in the paper's Fig. 5
style (tasks annotated with their DBMS, edges labeled i/e with moved
rows); ``delegation_plan_to_networkx`` exposes the same structure for
programmatic analysis (critical paths, fan-in, ...).
"""

from __future__ import annotations

from typing import Dict

import networkx as nx

from repro.core.plan import DelegationPlan, Movement

#: A small, stable color per DBMS annotation (cycled).
_PALETTE = [
    "#4C78A8",
    "#F58518",
    "#54A24B",
    "#B279A2",
    "#E45756",
    "#72B7B2",
    "#EECA3B",
]


def delegation_plan_to_dot(plan: DelegationPlan) -> str:
    """Render ``plan`` as Graphviz DOT text."""
    colors: Dict[str, str] = {}
    for index, annotation in enumerate(plan.annotations()):
        colors[annotation] = _PALETTE[index % len(_PALETTE)]

    lines = [
        "digraph delegation_plan {",
        "  rankdir=BT;",
        '  node [shape=box, style="rounded,filled", fontname="monospace"];',
    ]
    for task in plan.tasks.values():
        marker = " (root)" if task.task_id == plan.root_id else ""
        label = (
            f"t{task.task_id}{marker}\\n"
            f"{task.annotation}: {task.notation()}"
        )
        lines.append(
            f'  t{task.task_id} [label="{label}", '
            f'fillcolor="{colors[task.annotation]}", fontcolor=white];'
        )
    for edge in plan.edges:
        rows = (
            f" ({edge.moved_rows} rows)"
            if edge.moved_rows is not None
            else ""
        )
        style = "solid" if edge.movement is Movement.IMPLICIT else "bold"
        lines.append(
            f"  t{edge.producer_id} -> t{edge.consumer_id} "
            f'[label="{edge.movement}{rows}", style={style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def delegation_plan_to_networkx(plan: DelegationPlan) -> "nx.DiGraph":
    """The task DAG as a ``networkx.DiGraph`` (nodes keyed by task id)."""
    graph = nx.DiGraph()
    for task in plan.tasks.values():
        graph.add_node(
            task.task_id,
            annotation=task.annotation,
            notation=task.notation(),
            is_root=(task.task_id == plan.root_id),
            estimated_rows=task.estimated_rows,
        )
    for edge in plan.edges:
        graph.add_edge(
            edge.producer_id,
            edge.consumer_id,
            movement=edge.movement.value,
            moved_rows=edge.moved_rows,
            moved_bytes=edge.moved_bytes,
        )
    return graph


def critical_path(plan: DelegationPlan) -> list:
    """Task ids along the longest producer→root chain."""
    graph = delegation_plan_to_networkx(plan)
    return nx.dag_longest_path(graph)
