"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subsystems raise the most
specific subclass available; error messages always carry enough context
(object names, positions) to debug a failing query without a stack trace.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SQLError(ReproError):
    """Base class for errors in the SQL front end."""


class LexerError(SQLError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SQLError):
    """Raised when the parser cannot derive a statement from the tokens."""


class BindError(ReproError):
    """Raised when names in a query cannot be resolved against a catalog."""


class TypeCheckError(ReproError):
    """Raised when an expression is applied to incompatible types."""


class CatalogError(ReproError):
    """Raised for unknown / duplicate tables, views, servers, or columns."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during evaluation."""


class ConnectorError(ReproError):
    """Raised when a DBMS connector cannot reach or drive its database."""


class NetworkError(ReproError):
    """Raised for invalid simulated-network configurations or routes."""


class OptimizerError(ReproError):
    """Raised when the cross-database optimizer cannot produce a plan."""


class DelegationError(ReproError):
    """Raised when a delegation plan cannot be deployed onto the DBMSes."""


class WorkloadError(ReproError):
    """Raised for invalid workload configurations (scale factors, TDs)."""
