"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subsystems raise the most
specific subclass available; error messages always carry enough context
(object names, positions) to debug a failing query without a stack trace.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SQLError(ReproError):
    """Base class for errors in the SQL front end."""


class LexerError(SQLError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SQLError):
    """Raised when the parser cannot derive a statement from the tokens."""


class BindError(ReproError):
    """Raised when names in a query cannot be resolved against a catalog."""


class TypeCheckError(ReproError):
    """Raised when an expression is applied to incompatible types."""


class CatalogError(ReproError):
    """Raised for unknown / duplicate tables, views, servers, or columns."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during evaluation."""


class ConnectorError(ReproError):
    """Raised when a DBMS connector cannot reach or drive its database."""


class TransientConnectorError(ConnectorError):
    """A retryable connector failure (dropped packet, hiccup, restart).

    The connector's retry loop treats this class (and subclasses) as
    safe to retry with backoff; anything else fails the call at once.
    """


class ConnectorTimeoutError(TransientConnectorError):
    """A call's simulated round trip exceeded its per-call timeout budget."""


class EngineUnavailableError(ConnectorError):
    """The DBMS behind a connector is down (engine outage).

    Not retryable: an outage outlives a backoff window, so callers
    should re-plan around the engine (or surface a clear diagnostic
    when the engine holds data the query needs).  ``db`` names the
    unavailable engine when one specific engine can be blamed — the
    client's plan-repair loop uses it to record the outage in the
    health registry and re-plan around that engine; ``db=None`` marks
    an unrepairable condition (e.g. every holder of a table is down).

    ``table`` narrows the fault domain below the engine: a
    shard-scoped outage (only ``orders__p3`` is unreachable, the rest
    of the engine answers) names the struck table so branch-scoped
    recovery can quarantine exactly that (db, table) holder instead of
    tripping the whole engine's breaker.
    """

    def __init__(self, message: str, db=None, table=None):
        super().__init__(message)
        #: the unavailable DBMS, when a single engine can be blamed
        self.db = db
        #: the struck table for shard-scoped faults (None = whole engine)
        self.table = table


class CircuitOpenError(EngineUnavailableError):
    """A call failed fast because the engine's circuit breaker is open.

    Raised by the connector's guard *before* touching the retry budget
    or the fault injector's schedule: while a breaker is open the
    federation already knows the engine is down and re-probing it per
    query would only waste the budget (see :mod:`repro.health`).
    """


class NetworkError(ReproError):
    """Raised for invalid simulated-network configurations or routes."""


class NetworkPartitionedError(NetworkError):
    """A link is (temporarily) partitioned; transfers on it fail.

    Retryable by the connector layer — partitions heal, unlike the
    permanent topology constraints of :meth:`Network.forbid_link`.
    """


class SchemaDriftError(CatalogError):
    """A remote table's live schema no longer matches the global catalog.

    Raised by the catalog's fingerprint verification (and by the
    client's drift sniffing) when a remote engine changed a table
    underneath the federation — the paper's in-situ premise means the
    sources are autonomous, so this is an expected operational event,
    not a bug.  Carries a field-level diff so the recovery path (and a
    human reading the error) can see exactly what moved:

    * ``added`` — columns present on the engine but not in the catalog;
    * ``removed`` — columns the catalog knows but the engine dropped
      (a rename shows up as one ``removed`` plus one ``added``);
    * ``retyped`` — ``"col: old -> new"`` entries for type changes;
    * ``dropped`` — True when the whole table vanished from the engine.

    ``quarantined`` marks a table the recovery path gave up on: its
    holders are excluded from placement until a catalog refresh.
    """

    def __init__(
        self,
        message: str,
        db: str = "",
        table: str = "",
        added=None,
        removed=None,
        retyped=None,
        dropped: bool = False,
        quarantined: bool = False,
        expected_fingerprint: str = "",
        actual_fingerprint: str = "",
    ):
        super().__init__(message)
        #: the DBMS whose live schema drifted
        self.db = db
        #: the drifted table (catalog-cased name)
        self.table = table
        #: column names the engine added
        self.added = list(added) if added else []
        #: column names the engine dropped (or renamed away)
        self.removed = list(removed) if removed else []
        #: ``"col: old -> new"`` per type change
        self.retyped = list(retyped) if retyped else []
        #: the table no longer exists on the engine
        self.dropped = dropped
        #: the table is quarantined (placement avoids its holders)
        self.quarantined = quarantined
        self.expected_fingerprint = expected_fingerprint
        self.actual_fingerprint = actual_fingerprint

    def diff_summary(self) -> str:
        """Compact field-level diff for events and logs."""
        if self.dropped:
            return "table dropped"
        parts = []
        if self.added:
            parts.append("+" + ",".join(self.added))
        if self.removed:
            parts.append("-" + ",".join(self.removed))
        if self.retyped:
            parts.append("~" + ",".join(self.retyped))
        return " ".join(parts) or "fingerprint mismatch"


class OptimizerError(ReproError):
    """Raised when the cross-database optimizer cannot produce a plan."""


class DelegationError(ReproError):
    """Raised when a delegation plan cannot be deployed onto the DBMSes.

    Carries the structured deployment context: the DDL statements
    executed before the failure (``ddl_log``), the objects dropped by
    the deploy-or-rollback pass (``rolled_back``), and any objects the
    rollback itself could not remove (``leaked`` — empty in the normal
    case).

    Branch-scoped recovery (PR 11) adds a salvage channel: completed
    explicit-edge ``xm_`` snapshots living on *healthy* engines survive
    the rollback and are reported in ``salvaged`` as
    ``(task_id, db, "TABLE", name)`` so the pipeline can pin them as
    placeholder scans and re-delegate only the failed branch.
    """

    def __init__(
        self,
        message: str,
        ddl_log=None,
        rolled_back=None,
        leaked=None,
        failed_db=None,
        salvaged=None,
    ):
        super().__init__(message)
        #: (db, rendered DDL) executed before the failure
        self.ddl_log = list(ddl_log) if ddl_log else []
        #: (db, kind, name) dropped during rollback
        self.rolled_back = list(rolled_back) if rolled_back else []
        #: (db, kind, name) the rollback could not drop
        self.leaked = list(leaked) if leaked else []
        #: the DBMS whose statement failed, when known
        self.failed_db = failed_db
        #: (task_id, db, kind, name) completed snapshots kept for reuse
        self.salvaged = list(salvaged) if salvaged else []


class DeadlineExceeded(ReproError):
    """A query's deadline budget ran out (see :mod:`repro.qos`).

    Not retryable: the budget is per *query*, so once it is gone no
    amount of retrying inside the same submission can help.  Carries
    the phase the query died in (``prep``/``lopt``/``ann``/
    ``admission``/``delegate``/``execute``/``refresh``/``rollback``),
    the call-level detail when a connector raised it, and — when the
    expiry interrupted a deployed or partially deployed cascade — the
    rollback accounting (``rolled_back``/``leaked``), mirroring
    :class:`DelegationError` so no object is ever silently dropped.
    """

    def __init__(
        self,
        message: str,
        phase: str = "",
        detail: str = "",
        budget_seconds=None,
        elapsed_seconds=None,
        rolled_back=None,
        leaked=None,
    ):
        super().__init__(message)
        #: coarse phase the deadline expired in
        self.phase = phase
        #: call-level detail (``"ddl@db2"``) when a connector raised it
        self.detail = detail
        #: the query's total budget, in deadline seconds
        self.budget_seconds = budget_seconds
        #: budget consumed at expiry
        self.elapsed_seconds = elapsed_seconds
        #: (db, kind, name) dropped by the cancellation rollback
        self.rolled_back = list(rolled_back) if rolled_back else []
        #: (db, kind, name) the cancellation rollback could not drop
        self.leaked = list(leaked) if leaked else []


class OverloadError(ReproError):
    """A query was shed by admission control (see :mod:`repro.qos`).

    Raised *before* any engine work happens: the waiting room for some
    engine is full (or the caller lost its slot to a higher-priority
    query), so the submission consumed no capacity and is safe to retry
    after ``retry_after_seconds``.
    """

    def __init__(
        self,
        message: str,
        db=None,
        retry_after_seconds=None,
        priority=None,
    ):
        super().__init__(message)
        #: the engine whose admission queue shed the query
        self.db = db
        #: suggested client back-off before resubmitting (seconds)
        self.retry_after_seconds = retry_after_seconds
        #: the shed query's priority
        self.priority = priority


class WorkloadError(ReproError):
    """Raised for invalid workload configurations (scale factors, TDs)."""
