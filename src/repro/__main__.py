"""``python -m repro`` — a one-command demo of the system.

Runs the paper's motivating pandemic query through XDB and the three
baselines on freshly generated data, printing the delegation plan, the
DDL cascade, an EXPLAIN ANALYZE-style span tree, and a runtime/transfer
comparison.  ``--trace out.json`` additionally exports the XDB run's
span tree as Chrome trace-event JSON (load it in ``chrome://tracing``
or Perfetto).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.baselines.garlic import GarlicSystem
from repro.baselines.presto import PrestoSystem
from repro.baselines.sclera import ScleraSystem
from repro.bench.reporting import format_table, print_banner
from repro.core.client import XDB
from repro.obs.context import QueryContext, validate_chrome_trace
from repro.workloads.pandemic import CHO_QUERY, build_pandemic_deployment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="demo: the paper's pandemic query on XDB + baselines",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the XDB run's Chrome trace-event JSON to PATH",
    )
    args = parser.parse_args(argv)

    deployment = build_pandemic_deployment(
        citizens=1_000, vaccinations=1_500, measurements=2_500
    )

    print_banner("XDB — in-situ cross-database query processing")
    print("federation:", ", ".join(deployment.database_names()))
    print("query (Fig. 3 of the paper):")
    print(CHO_QUERY)

    xdb = XDB(deployment)
    report = xdb.submit(CHO_QUERY)

    print_banner("results")
    print(report.result.to_table(max_rows=12))

    print_banner("delegation plan")
    print(report.plan.describe())
    print()
    for db, ddl in report.deployed.ddl_log:
        print(f"@{db}: {ddl}")

    print_banner("explain analyze (span tree)")
    print(report.explain_analyze())

    if args.trace:
        payload = report.to_chrome_trace()
        validate_chrome_trace(payload)
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
        print(f"\nwrote Chrome trace ({len(payload['traceEvents'])} "
              f"events) to {args.trace}")

    print_banner("XDB vs. the mediator baselines")
    rows = [
        [
            "XDB",
            report.total_seconds,
            report.transfers.total_megabytes,
        ]
    ]
    for system in (
        GarlicSystem(deployment),
        PrestoSystem(deployment, workers=4),
        ScleraSystem(deployment),
    ):
        with QueryContext(label=type(system).__name__) as ctx:
            baseline = system.run(CHO_QUERY)
        moved = sum(r.payload_bytes for r in ctx.transfers) / 1e6
        rows.append([baseline.system, baseline.total_seconds, moved])
    print(format_table(["system", "total_s", "moved_MB"], rows))
    print(
        "\n(see examples/ for more, and `pytest benchmarks/ "
        "--benchmark-only` for the full evaluation)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
