"""Quickstart: two autonomous databases, one cross-database query.

Run with::

    python examples/quickstart.py

Builds a two-DBMS federation (PostgreSQL-flavoured ``CRM`` and
MariaDB-flavoured ``WEB``), submits a join+aggregate query through XDB,
and shows the delegation plan plus the DDL that was shipped to the
engines — no mediator ever touches the data.
"""

from repro import XDB, Deployment
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar


def main() -> None:
    # 1. A federation of two autonomous DBMSes (different vendors).
    deployment = Deployment({"CRM": "postgres", "WEB": "mariadb"})

    deployment.load_table(
        "CRM",
        "customers",
        Schema(
            [
                Field("id", INTEGER),
                Field("name", varchar(20)),
                Field("tier", varchar(8)),
            ]
        ),
        [
            (1, "ada", "gold"),
            (2, "grace", "gold"),
            (3, "edsger", "silver"),
            (4, "alan", "bronze"),
        ],
    )
    deployment.load_table(
        "WEB",
        "purchases",
        Schema(
            [
                Field("customer_id", INTEGER),
                Field("amount", DOUBLE),
                Field("channel", varchar(8)),
            ]
        ),
        [
            (1, 120.0, "web"),
            (1, 40.0, "store"),
            (2, 75.0, "web"),
            (3, 10.0, "web"),
            (3, 8.0, "web"),
            (4, 99.0, "store"),
        ],
    )

    # 2. Submit a cross-database query to the XDB middleware.
    xdb = XDB(deployment)
    report = xdb.submit(
        """
        SELECT c.tier, COUNT(*) AS sales, SUM(p.amount) AS revenue
        FROM customers c, purchases p
        WHERE c.id = p.customer_id AND p.channel = 'web'
        GROUP BY c.tier
        ORDER BY revenue DESC
        """
    )

    print("results")
    print(report.result.to_table())

    print("\ndelegation plan (tasks annotated with their DBMS)")
    print(report.plan.describe())

    print("\nDDL shipped to the engines (in each vendor's dialect)")
    for db, ddl in report.deployed.ddl_log:
        print(f"  @{db}: {ddl}")

    print("\nphase breakdown (simulated seconds)")
    for phase, seconds in report.phases.items():
        print(f"  {phase:>5}: {seconds:.4f}")

    moved = report.transfers.total_megabytes
    print(f"\ndata on the wire: {moved:.4f} MB "
          f"({report.transfers.transfer_count} transfers)")


if __name__ == "__main__":
    main()
