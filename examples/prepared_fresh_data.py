"""Prepared cross-database queries over fresh data.

The paper motivates cross-database querying with "ad-hoc queries on
fresh data" (vs. stale ETL copies).  Because XDB's delegation cascade
is a chain of *views*, a prepared query can stay deployed and be
re-executed cheaply — each run reads the DBMSes' current data with no
re-optimization and no re-delegation.
"""

from repro import Deployment, XDB
from repro.relational.schema import Field, Schema
from repro.sql.types import DOUBLE, INTEGER, varchar


def main() -> None:
    deployment = Deployment({"INVENTORY": "postgres", "POS": "mariadb"})
    deployment.load_table(
        "INVENTORY",
        "products",
        Schema(
            [
                Field("pid", INTEGER),
                Field("name", varchar(12)),
                Field("category", varchar(8)),
            ]
        ),
        [
            (1, "espresso", "drinks"),
            (2, "croissant", "bakery"),
            (3, "baguette", "bakery"),
        ],
    )
    deployment.load_table(
        "POS",
        "tickets",
        Schema([Field("pid", INTEGER), Field("amount", DOUBLE)]),
        [(1, 2.5), (2, 1.8), (1, 2.5)],
    )

    xdb = XDB(deployment)
    with xdb.prepare(
        """
        SELECT p.category, COUNT(*) AS items, SUM(t.amount) AS revenue
        FROM products p, tickets t
        WHERE p.pid = t.pid
        GROUP BY p.category
        """
    ) as live_dashboard:
        print("deployed delegation cascade:")
        for db, ddl in live_dashboard.deployed.ddl_log:
            print(f"  @{db}: {ddl[:90]}...")

        print("\nmorning sales:")
        print(live_dashboard.execute().result.to_table())

        # New tickets stream into the POS system during the day...
        deployment.database("POS").execute(
            "INSERT INTO tickets VALUES (3, 3.2), (3, 3.2), (2, 1.8)"
        )

        print("\nafternoon refresh (no re-optimization, fresh data):")
        report = live_dashboard.execute()
        print(report.result.to_table())
        print(
            f"\nre-execution phases: {report.phases} "
            f"(prep/lopt/ann are zero — the plan was reused)"
        )


if __name__ == "__main__":
    main()
