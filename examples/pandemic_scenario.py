"""The paper's motivating scenario (§II-A): the Municipal Office of Credo.

Three departments — citizens (CDB), vaccination center (VDB), health
(HDB) — each with their own DBMS (Table I).  The chief health officer's
query (Fig. 3) measures antibodies per vaccine type and age group.

This example reproduces, end to end, the paper's running example:
the optimized logical plan (Fig. 6), the delegation plan (Fig. 5a-like),
the DDL cascade (Fig. 7), and the in-situ execution (Fig. 8).
"""

from repro.core.client import XDB
from repro.workloads.pandemic import CHO_QUERY, build_pandemic_deployment


def main() -> None:
    deployment = build_pandemic_deployment(
        citizens=2_000,
        vaccinations=3_000,
        measurements=5_000,
        # Heterogeneity, as in the paper's discussion: the vaccination
        # center runs MariaDB while the others run PostgreSQL.
        profiles={"VDB": "mariadb"},
    )

    xdb = XDB(deployment)
    print("chief health officer's query (Fig. 3):")
    print(CHO_QUERY)

    report = xdb.submit(CHO_QUERY)

    print("antibody levels per vaccine type and age group:")
    print(report.result.to_table(max_rows=24))

    print("\ndelegation plan — tasks and dataflow edges (cf. Fig. 5a):")
    print(report.plan.describe())

    print("\ndelegation DDL cascade (cf. Fig. 7):")
    for db, ddl in report.deployed.ddl_log:
        kind = ddl.split()[1:3]
        print(f"  @{db}: {ddl[:110]}{'...' if len(ddl) > 110 else ''}")

    print(
        f"\nXDB query executed on {report.deployed.root_db}; the "
        "middleware never touched a data row:"
    )
    from repro.sql.render import render

    print(f"  {render(report.deployed.xdb_query)}")

    print("\nper-edge data movement:")
    for edge in report.plan.edges:
        producer = report.plan.tasks[edge.producer_id]
        consumer = report.plan.tasks[edge.consumer_id]
        print(
            f"  {producer.annotation} -> {consumer.annotation} "
            f"[{edge.movement}]: {edge.moved_rows} rows, "
            f"{edge.moved_bytes} bytes"
        )

    print("\nphases:", {k: round(v, 4) for k, v in report.phases.items()})
    print(f"consultation round-trips: {report.consultations}")


if __name__ == "__main__":
    main()
