"""TPC-H federation: XDB against the mediator baselines.

Loads TPC-H data (micro scale factor) under table distribution TD1
(Table III), runs a few of the paper's queries on all four systems, and
prints a runtime/transfer comparison — a miniature of Figure 9.

Usage::

    python examples/tpch_federation.py [micro_sf]

Default micro_sf = 0.005 (≈ a "sf 2.5" testbed).
"""

import sys

from repro.bench.harness import build_systems
from repro.bench.reporting import format_table, print_banner
from repro.bench.scenarios import build_tpch_deployment
from repro.workloads.tpch import QUERY_JOIN_COUNTS, query


def main(scale_factor: float = 0.005) -> None:
    print(f"generating TPC-H data at micro scale factor {scale_factor}...")
    deployment, data = build_tpch_deployment("TD1", scale_factor)
    print("row counts:", data.row_counts())

    systems = build_systems(deployment)

    rows = []
    for name in ("Q3", "Q5", "Q10"):
        print(f"running {name} ({QUERY_JOIN_COUNTS[name]} joins) "
              "on all four systems...")
        records = systems.run_all(query(name), name)
        xdb = records["XDB"].total_seconds
        for system, record in records.items():
            rows.append(
                [
                    name,
                    system,
                    record.total_seconds,
                    f"{record.total_seconds / xdb:.1f}x",
                    record.megabytes_total,
                ]
            )

    print_banner("runtime and data movement (cf. Fig. 9)")
    print(
        format_table(
            ["query", "system", "total_s", "vs XDB", "moved_MB"], rows
        )
    )

    print_banner("one delegation plan in detail")
    report = systems.xdb.submit(query("Q5"))
    print(report.describe())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.005)
