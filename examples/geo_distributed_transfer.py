"""Data-transfer cost in managed-cloud scenarios (§VI-C, Fig. 14).

Compares the bytes shipped into the cloud when the query middleware
(XDB) or mediator (Garlic/Presto) runs as a managed cloud service:

* ONP — all DBMSes on-premise behind one LAN;
* GEO — every DBMS in a different data center (WAN everywhere).

Cloud vendors charge for ingress: XDB's in-situ execution keeps
intermediates off the cloud entirely.
"""

from repro.bench.harness import build_systems
from repro.bench.reporting import format_table, print_banner
from repro.bench.scenarios import build_tpch_deployment
from repro.workloads.tpch import query


def main(scale_factor: float = 0.005) -> None:
    rows = []
    for name in ("Q3", "Q5", "Q9"):
        onp_dep, _ = build_tpch_deployment(
            "TD1", scale_factor, topology="onprem", middleware_site="cloud"
        )
        onp = build_systems(onp_dep)
        onp_records = onp.run_all(query(name), name)

        geo_dep, _ = build_tpch_deployment(
            "TD1", scale_factor, topology="geo", middleware_site="cloud"
        )
        geo = build_systems(geo_dep)
        geo_records = geo.run_all(query(name), name)

        rows.append(
            [
                name,
                onp_records["XDB"].megabytes_to_cloud,
                geo_records["XDB"].megabytes_cross_site,
                onp_records["Garlic"].megabytes_to_cloud,
                onp_records["Presto"].megabytes_to_cloud,
            ]
        )

    print_banner("MB transferred to/through the cloud (cf. Fig. 14)")
    print(
        format_table(
            ["query", "XDB(ONP)", "XDB(GEO)", "Garlic", "Presto"], rows
        )
    )
    print(
        "\nXDB(ONP) ships only control messages and the final result;\n"
        "the mediators centralize every intermediate relation."
    )


if __name__ == "__main__":
    main()
