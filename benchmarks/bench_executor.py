"""Executor microbenchmarks — row vs. batch (vectorized) mode.

Measures rows/sec for the four core operator shapes (scan+project,
filter, hash join, grouped aggregation) on synthetic fact/dim tables,
in both execution modes of :class:`repro.engine.database.Database`.

Standalone (unlike the ``bench_fig*`` pytest modules) so CI can gate on
it cheaply::

    python benchmarks/bench_executor.py                 # full scale
    python benchmarks/bench_executor.py --rows 60000 --check

Writes ``benchmarks/results/BENCH_executor.json``; ``--check`` exits
non-zero if batch mode is slower than row mode on the join or
aggregation microbenchmark (the regression gate).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.database import Database  # noqa: E402
from repro.obs.clock import wall_now  # noqa: E402
from repro.relational.schema import Field, Schema  # noqa: E402
from repro.sql.types import DOUBLE, INTEGER, varchar  # noqa: E402

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_executor.json"

#: name -> (sql, which table's row count the rows/sec rate is over)
BENCHES = {
    "scan": ("SELECT id, v FROM fact", "fact"),
    "filter": ("SELECT id FROM fact WHERE v > 50 AND did < 4000", "fact"),
    "join": (
        "SELECT f.v, d.name FROM fact f, dim d WHERE f.did = d.id",
        "fact",
    ),
    "aggregate": (
        "SELECT g, SUM(v) AS s, COUNT(*) AS n, AVG(v) AS a "
        "FROM fact GROUP BY g",
        "fact",
    ),
}

#: Microbenchmarks the --check gate requires batch mode to win.
GATED = ("join", "aggregate")


def build_database(mode: str, fact_rows: int, dim_rows: int) -> Database:
    rng = random.Random(7)
    fact = [
        (i, i % dim_rows, rng.random() * 100.0, "g%d" % (i % 50))
        for i in range(fact_rows)
    ]
    dim = [(i, "name%d" % i) for i in range(dim_rows)]
    database = Database("BENCH", execution_mode=mode)
    database.create_table(
        "fact",
        Schema(
            [
                Field("id", INTEGER),
                Field("did", INTEGER),
                Field("v", DOUBLE),
                Field("g", varchar(8)),
            ]
        ),
        fact,
    )
    database.create_table(
        "dim",
        Schema([Field("id", INTEGER), Field("name", varchar(16))]),
        dim,
    )
    return database


def time_query(database: Database, sql: str, repeat: int):
    """Best-of-``repeat`` wall time and the result cardinality."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = wall_now()
        result = database.execute(sql)
        elapsed = wall_now() - start
        best = min(best, elapsed)
    return best, len(result.rows)


def run(fact_rows: int, dim_rows: int, repeat: int) -> dict:
    databases = {
        mode: build_database(mode, fact_rows, dim_rows)
        for mode in ("row", "batch")
    }
    input_rows = {"fact": fact_rows, "dim": dim_rows}
    benches = {}
    for name, (sql, rate_table) in BENCHES.items():
        entry = {"sql": sql}
        cardinalities = {}
        for mode, database in databases.items():
            seconds, out_rows = time_query(database, sql, repeat)
            entry[f"{mode}_seconds"] = round(seconds, 6)
            entry[f"{mode}_rows_per_sec"] = round(
                input_rows[rate_table] / seconds
            )
            cardinalities[mode] = out_rows
        if cardinalities["row"] != cardinalities["batch"]:
            raise SystemExit(
                f"{name}: cardinality mismatch between modes "
                f"{cardinalities!r}"
            )
        entry["rows_out"] = cardinalities["row"]
        entry["speedup"] = round(
            entry["row_seconds"] / entry["batch_seconds"], 2
        )
        benches[name] = entry
    return {
        "meta": {
            "fact_rows": fact_rows,
            "dim_rows": dim_rows,
            "repeat": repeat,
            "python": platform.python_version(),
        },
        "benches": benches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=200_000,
                        help="fact table rows (default 200000)")
    parser.add_argument("--dims", type=int, default=5_000,
                        help="dim table rows (default 5000)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions; best is kept")
    parser.add_argument("--out", type=pathlib.Path, default=RESULTS_PATH,
                        help="output JSON path")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if batch is slower than row on the "
                             "join or aggregation microbenchmark")
    args = parser.parse_args(argv)

    report = run(args.rows, args.dims, args.repeat)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{'bench':10s} {'row_s':>8s} {'batch_s':>8s} {'speedup':>8s}")
    failures = []
    for name, entry in report["benches"].items():
        print(
            f"{name:10s} {entry['row_seconds']:8.3f} "
            f"{entry['batch_seconds']:8.3f} {entry['speedup']:7.2f}x"
        )
        if name in GATED and entry["speedup"] < 1.0:
            failures.append(name)
    print(f"wrote {args.out}")
    if args.check and failures:
        print(f"FAIL: batch slower than row on: {', '.join(failures)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
