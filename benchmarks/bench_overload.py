"""Overload benchmark — admission control and deadlines under load.

Drives one shared two-engine federation from genuinely concurrent
client threads at 1x / 4x / 16x its admission capacity, with 5%
injected transient faults at a fixed seed.  Every query carries a
:class:`repro.qos.QoSPolicy` (deadline + priority); the workload gate
queues, sheds, and evicts by priority while each query's retries,
backoff, and queue waits draw down its own deadline budget.

Standalone (like ``bench_executor.py``) so CI can gate on it cheaply::

    python benchmarks/bench_overload.py                  # default seed
    python benchmarks/bench_overload.py --seed 7 --check

Writes ``benchmarks/results/BENCH_overload.json``; ``--check`` exits
non-zero if any query died on an unhandled error, any short-lived
catalog object leaked, an admitted query neither met its deadline nor
returned a structured DeadlineExceeded, or the shed ratios fall
outside their bounds (none at 1x, substantial shedding at 16x).
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import platform
import sys
import threading

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.connect.connector import RetryPolicy  # noqa: E402
from repro.core.client import XDB  # noqa: E402
from repro.errors import DeadlineExceeded, OverloadError  # noqa: E402
from repro.faults import FaultInjector, FaultPolicy  # noqa: E402
from repro.federation.deployment import Deployment  # noqa: E402
from repro.qos import (  # noqa: E402
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    GateConfig,
    QoSPolicy,
)
from repro.relational.schema import Field, Schema  # noqa: E402
from repro.sql.types import INTEGER, varchar  # noqa: E402

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_overload.json"
)

QUERY = (
    "SELECT u.name, COUNT(*) AS n FROM users u, events e "
    "WHERE u.id = e.user_id GROUP BY u.name"
)

#: per-engine concurrency tokens; offered load multiplies the total
MAX_CONCURRENT = 2
#: bounded waiting room per engine — beyond this the gate sheds
MAX_QUEUE = 4
#: deterministic simulated queue penalty per position ahead
QUEUE_SLOT_SIM_SECONDS = 0.25
#: per-query deadline / per-call cap (deadline seconds)
DEADLINE_SECONDS = 20.0
PER_CALL_CAP_SECONDS = 10.0
#: transient fault rate on every engine (the 5% of the gate's spec)
FAULT_RATE = 0.05
#: retry attempts per guarded call — at 5% faults the chance of a
#: spurious give-up is rate**attempts ~ 1.6e-8 per call
MAX_ATTEMPTS = 6

PRIORITIES = (PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_HIGH)
PRIORITY_NAMES = {
    PRIORITY_LOW: "low",
    PRIORITY_NORMAL: "normal",
    PRIORITY_HIGH: "high",
}


def build_deployment(seed: int) -> Deployment:
    dep = Deployment({"A": "postgres", "B": "postgres"})
    users = Schema([Field("id", INTEGER), Field("name", varchar())])
    events = Schema([Field("user_id", INTEGER), Field("kind", varchar())])
    dep.load_table(
        "A", "users", users, [(i, f"user{i}") for i in range(40)]
    )
    dep.load_table(
        "B",
        "events",
        events,
        [(i % 40, "login" if i % 3 else "query") for i in range(160)],
    )
    dep.configure_qos(
        GateConfig(
            max_concurrent=MAX_CONCURRENT,
            max_queue=MAX_QUEUE,
            max_wait_seconds=30.0,
            queue_slot_sim_seconds=QUEUE_SLOT_SIM_SECONDS,
        )
    )
    for connector in dep.connectors.values():
        connector.retry_policy = RetryPolicy(max_attempts=MAX_ATTEMPTS)
    FaultInjector(
        FaultPolicy(seed=seed, transient_error_rate=FAULT_RATE)
    ).install(dep)
    return dep


def scan_leaks(dep: Deployment):
    """Short-lived delegation objects still on any engine's catalog."""
    leaked = []
    for name, database in dep.databases.items():
        for obj in database.catalog.names():
            if obj.startswith(("xf_", "xm_", "xv_")):
                leaked.append(f"{name}:{obj}")
    return sorted(leaked)


def worker(
    index: int,
    dep: Deployment,
    queries: int,
    out: list,
    barrier: threading.Barrier,
) -> None:
    """One client thread: its own XDB (own DDL namespace), shared
    engines, gate, breakers, and fault schedule."""
    xdb = XDB(dep, ddl_namespace=f"t{index}_")
    xdb.warm_metadata()
    # Line up the whole fleet before the first submission: the offered
    # load must actually arrive concurrently, not trickle in as each
    # thread finishes its metadata warm-up.
    barrier.wait()
    for q in range(queries):
        priority = PRIORITIES[(index + q) % len(PRIORITIES)]
        policy = QoSPolicy(
            deadline_seconds=DEADLINE_SECONDS,
            per_call_cap_seconds=PER_CALL_CAP_SECONDS,
            priority=priority,
        )
        record = {"worker": index, "priority": priority}
        try:
            report = xdb.submit(QUERY, qos=policy)
        except OverloadError as exc:
            record["outcome"] = "shed"
            record["retry_after_seconds"] = exc.retry_after_seconds
        except DeadlineExceeded as exc:
            record["outcome"] = "deadline_exceeded"
            record["phase"] = exc.phase
            record["rolled_back"] = len(exc.rolled_back)
            record["leaked_in_error"] = len(exc.leaked)
        except Exception as exc:  # noqa: BLE001 - the gate: must be empty
            record["outcome"] = "error"
            record["error"] = f"{type(exc).__name__}: {exc}"
        else:
            record["outcome"] = "ok"
            record["rows"] = len(report.result)
            remaining = report.qos.deadline_remaining_seconds
            record["deadline_remaining_seconds"] = remaining
            record["latency_seconds"] = DEADLINE_SECONDS - remaining
            record["admission_wait_seconds"] = (
                report.qos.admission_wait_seconds
                + report.qos.admission_sim_seconds
            )
        out.append(record)


def percentile(values, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(math.ceil(q * len(ordered))) - 1, 0)
    return ordered[rank]


def run_load(load: int, seed: int, queries_per_worker: int) -> dict:
    dep = build_deployment(seed)
    engines = len(dep.databases)
    workers = MAX_CONCURRENT * engines * load
    records: list = []
    lists = [[] for _ in range(workers)]
    barrier = threading.Barrier(workers)
    threads = [
        threading.Thread(
            target=worker,
            args=(i, dep, queries_per_worker, lists[i], barrier),
            name=f"client-{i}",
        )
        for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for chunk in lists:
        records.extend(chunk)

    leaked = scan_leaks(dep)
    by_outcome = {}
    for record in records:
        by_outcome.setdefault(record["outcome"], []).append(record)
    ok = by_outcome.get("ok", [])
    shed = by_outcome.get("shed", [])
    expired = by_outcome.get("deadline_exceeded", [])
    errors = by_outcome.get("error", [])
    latencies = [r["latency_seconds"] for r in ok]
    total = len(records)
    gate = dep.workload_gate
    shed_by_priority = {
        PRIORITY_NAMES[p]: sum(1 for r in shed if r["priority"] == p)
        for p in PRIORITIES
    }
    return {
        "load": load,
        "workers": workers,
        "queries": total,
        "ok": len(ok),
        "shed": len(shed),
        "deadline_exceeded": len(expired),
        "errors": len(errors),
        "error_samples": [r["error"] for r in errors[:5]],
        "deadline_violations": sum(
            1 for r in ok if r["deadline_remaining_seconds"] < 0.0
        ),
        "leaked_objects": leaked,
        "leaked_in_errors": sum(
            r.get("leaked_in_error", 0) for r in expired
        ),
        "goodput": len(ok) / total if total else 0.0,
        "shed_ratio": len(shed) / total if total else 0.0,
        "shed_by_priority": shed_by_priority,
        "p50_latency_seconds": percentile(latencies, 0.50),
        "p99_latency_seconds": percentile(latencies, 0.99),
        "p50_deadline_fraction": percentile(
            [lat / DEADLINE_SECONDS for lat in latencies], 0.50
        ),
        "p99_deadline_fraction": percentile(
            [lat / DEADLINE_SECONDS for lat in latencies], 0.99
        ),
        "gate": {
            "admitted": gate.admitted,
            "sheds": gate.sheds,
            "evictions": gate.evictions,
            "wait_timeouts": gate.wait_timeouts,
        },
    }


def check(report: dict) -> list:
    """The regression gate; returns a list of violation strings."""
    problems = []
    for row in report["loads"]:
        tag = f"{row['load']}x"
        if row["errors"]:
            problems.append(
                f"{tag}: {row['errors']} unhandled error(s), e.g. "
                + "; ".join(row["error_samples"])
            )
        if row["leaked_objects"]:
            problems.append(
                f"{tag}: leaked catalog objects: {row['leaked_objects']}"
            )
        if row["leaked_in_errors"]:
            problems.append(
                f"{tag}: {row['leaked_in_errors']} object(s) reported "
                "leaked by DeadlineExceeded rollbacks"
            )
        if row["deadline_violations"]:
            problems.append(
                f"{tag}: {row['deadline_violations']} query(ies) "
                "returned ok past their deadline"
            )
    by_load = {row["load"]: row for row in report["loads"]}
    base = by_load.get(1)
    peak = by_load.get(max(by_load))
    if base is not None and base["shed_ratio"] > 0.05:
        problems.append(
            f"1x: shed ratio {base['shed_ratio']:.3f} > 0.05 — the gate "
            "sheds work the capacity could have carried"
        )
    if peak is not None and peak is not base:
        if peak["shed_ratio"] <= 0.10:
            problems.append(
                f"{peak['load']}x: shed ratio {peak['shed_ratio']:.3f} "
                "<= 0.10 — overload is not being shed"
            )
        if peak["ok"] == 0:
            problems.append(
                f"{peak['load']}x: zero goodput under overload"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7,
                        help="fault-injection seed (default 7)")
    parser.add_argument("--loads", type=int, nargs="+",
                        default=[1, 4, 16],
                        help="offered-load multipliers (default 1 4 16)")
    parser.add_argument("--queries", type=int, default=3,
                        help="queries per client thread (default 3)")
    parser.add_argument("--out", type=pathlib.Path, default=RESULTS_PATH,
                        help=f"output JSON path (default {RESULTS_PATH})")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on gate violations")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "overload",
        "seed": args.seed,
        "python": platform.python_version(),
        "config": {
            "max_concurrent": MAX_CONCURRENT,
            "max_queue": MAX_QUEUE,
            "queue_slot_sim_seconds": QUEUE_SLOT_SIM_SECONDS,
            "deadline_seconds": DEADLINE_SECONDS,
            "per_call_cap_seconds": PER_CALL_CAP_SECONDS,
            "fault_rate": FAULT_RATE,
            "max_attempts": MAX_ATTEMPTS,
            "queries_per_worker": args.queries,
        },
        "loads": [
            run_load(load, args.seed, args.queries)
            for load in args.loads
        ],
    }

    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    header = (
        f"{'load':>5} {'workers':>7} {'ok':>5} {'shed':>5} "
        f"{'expired':>7} {'errors':>6} {'goodput':>8} "
        f"{'p50s':>8} {'p99s':>8}"
    )
    print(header)
    for row in report["loads"]:
        print(
            f"{row['load']:>4}x {row['workers']:>7} {row['ok']:>5} "
            f"{row['shed']:>5} {row['deadline_exceeded']:>7} "
            f"{row['errors']:>6} {row['goodput']:>8.3f} "
            f"{row['p50_latency_seconds']:>8.3f} "
            f"{row['p99_latency_seconds']:>8.3f}"
        )
    print(f"results -> {args.out}")

    if args.check:
        problems = check(report)
        if problems:
            for problem in problems:
                print(f"CHECK FAILED: {problem}", file=sys.stderr)
            return 1
        print("overload gate: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
