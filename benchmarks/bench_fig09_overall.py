"""Figures 9a–9c — overall runtime performance.

All six cross-database queries × {XDB, Garlic, Presto(4w), Sclera} for
each table distribution TD1–TD3 (Table III).  The paper reports XDB up
to 4× faster than Garlic, 6× than Presto, and 30× than ScleraDB.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.workloads.tpch import QUERIES, query

from conftest import systems_for


def run_distribution(td: str):
    systems = systems_for(td)
    rows = []
    speedups = []
    for name in sorted(QUERIES, key=lambda q: int(q[1:])):
        records = systems.run_all(query(name), name)
        xdb_seconds = records["XDB"].total_seconds
        row = [name]
        for system in ("XDB", "Garlic", "Presto", "Sclera"):
            row.append(records[system].total_seconds)
        for system in ("Garlic", "Presto", "Sclera"):
            speedups.append(
                (system, records[system].total_seconds / xdb_seconds)
            )
        rows.append(row)
    return rows, speedups


@pytest.mark.parametrize("td", ["TD1", "TD2", "TD3"])
def test_fig09_overall(benchmark, results_sink, td):
    rows, speedups = benchmark.pedantic(
        run_distribution, args=(td,), rounds=1, iterations=1
    )
    table = format_table(
        ["query", "XDB_s", "Garlic_s", "Presto4_s", "Sclera_s"], rows
    )
    maxima = {}
    for system, factor in speedups:
        maxima[system] = max(maxima.get(system, 0.0), factor)
    summary = ", ".join(
        f"XDB vs {system}: up to {factor:.1f}x"
        for system, factor in sorted(maxima.items())
    )
    results_sink(
        f"fig09_overall_{td.lower()}",
        f"Figure 9 ({td}) — overall runtime, all queries\n{table}\n{summary}",
    )

    # Shape: XDB wins on every query under every distribution.
    for row in rows:
        assert row[1] == min(row[1:]), row
    # Sclera pays the heaviest penalty on at least one query.
    assert maxima["Sclera"] >= maxima["Garlic"]
