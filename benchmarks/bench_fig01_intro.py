"""Figure 1 — the introduction's motivating measurement.

TPC-H Q3 over distributed tables (TD1) at two scale factors: total
execution time per system, decomposed into "actual execution" (white
bar) and data movement to the mediator (shaded bar).  The paper's
observation: Garlic spends ~85% and Presto ~97% of their time moving
data; XDB's in-situ execution stays close to the actual execution time.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.bench.scenarios import sf_label
from repro.workloads.tpch import query

from conftest import systems_for

SCALE_FACTORS = [0.002, 0.005]


def run_fig01():
    rows = []
    for sf in SCALE_FACTORS:
        systems = systems_for("TD1", scale_factor=sf)
        records = systems.run_all(query("Q3"), "Q3")
        for name in ("Garlic", "Presto", "XDB"):
            record = records[name]
            share = (
                record.transfer_seconds / record.total_seconds
                if record.total_seconds
                else 0.0
            )
            rows.append(
                [
                    sf_label(sf),
                    record.system,
                    record.total_seconds,
                    record.processing_seconds,
                    record.transfer_seconds,
                    f"{share:.0%}",
                ]
            )
    return rows


def test_fig01_intro(benchmark, results_sink):
    rows = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    table = format_table(
        [
            "scale",
            "system",
            "total_s",
            "actual_exec_s",
            "data_movement_s",
            "movement_share",
        ],
        rows,
    )
    results_sink("fig01_intro", "Figure 1 — Q3, TD1\n" + table)

    # Shape assertions from the paper's narrative.
    by_key = {(r[0], r[1]): r for r in rows}
    for sf in SCALE_FACTORS:
        label = sf_label(sf)
        garlic = by_key[(label, "Garlic")]
        presto = by_key[(label, "Presto(4w)")]
        xdb = by_key[(label, "XDB")]
        # Mediators spend most of their time on data movement...
        assert garlic[4] > garlic[3]
        assert presto[4] > presto[3]
        # ...Presto's movement share exceeds Garlic's (JDBC)...
        assert presto[4] > garlic[4]
        # ...and XDB beats both outright.
        assert xdb[2] < garlic[2]
        assert xdb[2] < presto[2]
