"""Figure 13 — average runtime over all queries when scaling the data.

TD1, all six queries, increasing scale factors.  The paper reports XDB
averaging ~4× over Presto and ~3× over Garlic across all scale factors,
with runtime growth proportional to the intermediate data transferred.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.workloads.tpch import QUERIES, query

from conftest import SWEEP_SFS, systems_for


def run_fig13():
    rows = []
    for sf in SWEEP_SFS:
        systems = systems_for("TD1", scale_factor=sf)
        totals = {"XDB": 0.0, "Garlic": 0.0, "Presto": 0.0, "Sclera": 0.0}
        moved_mb = 0.0
        for name in QUERIES:
            records = systems.run_all(query(name), name)
            for system, record in records.items():
                totals[system] += record.total_seconds
            moved_mb += records["XDB"].megabytes_total
        count = len(QUERIES)
        rows.append(
            [
                sf,
                totals["XDB"] / count,
                totals["Garlic"] / count,
                totals["Presto"] / count,
                totals["Sclera"] / count,
                totals["Garlic"] / totals["XDB"],
                totals["Presto"] / totals["XDB"],
                moved_mb,
            ]
        )
    return rows


def test_fig13_average_scalability(benchmark, results_sink):
    rows = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    table = format_table(
        [
            "micro_sf",
            "XDB_avg_s",
            "Garlic_avg_s",
            "Presto4_avg_s",
            "Sclera_avg_s",
            "garlic/xdb",
            "presto/xdb",
            "XDB_moved_MB",
        ],
        rows,
    )
    results_sink(
        "fig13_average_scalability",
        "Figure 13 — average runtime across all queries (TD1)\n" + table,
    )

    for row in rows:
        # Average speedups in the paper's direction at every scale.
        assert row[5] > 1.0  # Garlic slower on average
        assert row[6] > 1.0  # Presto slower on average
    # Intermediate data grows with sf and so does XDB's average runtime.
    assert rows[-1][7] > rows[0][7]
    assert rows[-1][1] > rows[0][1]
