"""Figure 11 — scaling Presto's workers vs. XDB's decentral execution.

TD1; Presto with 2, 4, and 10 workers against XDB.  The paper's point:
adding workers improves Presto's "actual" processing but its
centralized data movement offsets the scale-out — total runtime stays
nearly flat and never approaches XDB.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_presto, run_xdb
from repro.bench.reporting import format_table
from repro.baselines.presto import PrestoSystem
from repro.workloads.tpch import query

from conftest import systems_for

WORKERS = [2, 4, 10]
QUERY_NAMES = ["Q3", "Q5", "Q8"]


def run_fig11():
    systems = systems_for("TD1")
    deployment = systems.deployment
    rows = []
    for name in QUERY_NAMES:
        xdb_record = run_xdb(deployment, query(name), name, xdb=systems.xdb)
        entry = [name, xdb_record.total_seconds]
        totals = {}
        for workers in WORKERS:
            presto = PrestoSystem(deployment, workers=workers)
            presto.catalog.refresh()
            record = run_presto(
                deployment, query(name), name, system=presto
            )
            entry.append(record.total_seconds)
            totals[workers] = record
        rows.append((entry, totals))
    return rows


def test_fig11_presto_scaling(benchmark, results_sink):
    rows = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    table = format_table(
        ["query", "XDB_s"] + [f"Presto{w}w_s" for w in WORKERS],
        [entry for entry, _ in rows],
    )
    results_sink(
        "fig11_presto_scaling",
        "Figure 11 — scaling Presto workers (TD1)\n" + table,
    )

    for entry, totals in rows:
        xdb_seconds = entry[1]
        presto_runs = entry[2:]
        # Scaling out never lets Presto catch XDB.
        assert all(xdb_seconds < seconds for seconds in presto_runs)
        # Runtime is nearly flat: 5x the workers buys < 35% improvement
        # because transfers dominate.
        assert presto_runs[-1] > presto_runs[0] * 0.65
        # The processing share does shrink with workers.
        assert (
            totals[10].extra["mediator_processing"]
            <= totals[2].extra["mediator_processing"] + 1e-9
        )
        # Transfer time is worker-independent.
        assert totals[10].transfer_seconds == pytest.approx(
            totals[2].transfer_seconds, rel=0.05
        )
