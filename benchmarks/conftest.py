"""Shared benchmark fixtures and the results sink.

Every ``bench_*`` module regenerates one table or figure of the paper's
evaluation (§VI).  Outputs are printed (visible with ``pytest -s``) and
persisted under ``benchmarks/results/`` so EXPERIMENTS.md can reference
them.

Scale: the benchmarks default to micro scale factors (see
``repro.bench.scenarios.MICRO_SF``).  Set ``REPRO_BENCH_SF`` to scale
the main experiments up or down (e.g. ``REPRO_BENCH_SF=0.02`` for the
"sf 10"-equivalent used in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Tuple

import pytest

from repro.bench.harness import SystemSet, build_systems
from repro.bench.scenarios import build_tpch_deployment

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Default micro scale factor for the single-sf experiments ("sf 10"
#: equivalent is 0.02; the default keeps the suite fast).
BENCH_SF = float(os.environ.get("REPRO_BENCH_SF", "0.005"))

#: Scale factors for the scalability sweeps (paper: sf 1/10/50/100).
SWEEP_SFS = [0.001, 0.005, 0.02]

_CACHE: Dict[Tuple, SystemSet] = {}


def systems_for(
    td: str = "TD1",
    scale_factor: float = None,
    profiles: tuple = (),
    topology: str = "onprem",
    middleware_site: str = None,
    presto_workers: int = 4,
) -> SystemSet:
    """Session-cached deployment + warmed systems for a scenario."""
    scale_factor = BENCH_SF if scale_factor is None else scale_factor
    key = (td, scale_factor, profiles, topology, middleware_site, presto_workers)
    if key not in _CACHE:
        deployment, _ = build_tpch_deployment(
            td,
            scale_factor,
            topology=topology,
            profiles=dict(profiles),
            middleware_site=middleware_site,
        )
        _CACHE[key] = build_systems(deployment, presto_workers=presto_workers)
    return _CACHE[key]


@pytest.fixture(scope="session")
def results_sink():
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return sink
