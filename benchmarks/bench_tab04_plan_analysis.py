"""Table IV — analysis of XDB's delegation plans.

For Q3, Q5, and Q8 under TD1 and TD2: every inter-task dataflow edge
``t_i --x--> t_j`` with its movement type and the number of rows
actually moved, plus the per-query totals (Σ) the paper reports.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_xdb
from repro.bench.reporting import format_table
from repro.core.plan import Movement
from repro.workloads.tpch import query

from conftest import systems_for

QUERY_NAMES = ["Q3", "Q5", "Q8"]
DISTRIBUTIONS = ["TD1", "TD2"]


def run_tab04():
    rows = []
    stats = {}
    for td in DISTRIBUTIONS:
        systems = systems_for(td)
        for name in QUERY_NAMES:
            report = systems.xdb.submit(query(name))
            moved_total = 0
            edge_count = {Movement.IMPLICIT: 0, Movement.EXPLICIT: 0}
            for edge in report.plan.edges:
                producer = report.plan.tasks[edge.producer_id]
                consumer = report.plan.tasks[edge.consumer_id]
                moved_total += edge.moved_rows or 0
                edge_count[edge.movement] += 1
                rows.append(
                    [
                        td,
                        name,
                        f"{producer} --{edge.movement}--> {consumer}",
                        edge.moved_rows,
                    ]
                )
            rows.append([td, name, "Σ", moved_total])
            stats[(td, name)] = {
                "tasks": report.plan.task_count(),
                "implicit": edge_count[Movement.IMPLICIT],
                "explicit": edge_count[Movement.EXPLICIT],
                "moved": moved_total,
            }
    return rows, stats


def test_tab04_plan_analysis(benchmark, results_sink):
    rows, stats = benchmark.pedantic(run_tab04, rounds=1, iterations=1)
    table = format_table(["TD", "query", "edge", "#rows"], rows)
    summary_rows = [
        [td, name, s["tasks"], s["implicit"], s["explicit"], s["moved"]]
        for (td, name), s in sorted(stats.items())
    ]
    summary = format_table(
        ["TD", "query", "tasks", "implicit", "explicit", "rows_moved"],
        summary_rows,
    )
    results_sink(
        "tab04_plan_analysis",
        "Table IV — delegation plan analysis\n"
        + table
        + "\n\nper-plan summary\n"
        + summary,
    )

    # Structural properties from the paper's Table IV discussion:
    # every evaluated query decomposes into multiple tasks under both
    # distributions, and plans depend on the table distribution.
    for (td, name), s in stats.items():
        assert s["tasks"] >= 2, (td, name)
        assert s["implicit"] + s["explicit"] == s["tasks"] - 1
    assert any(
        stats[("TD1", q)] != stats[("TD2", q)] for q in QUERY_NAMES
    ), "plans should differ across table distributions"
    # Q8 (8 joins) moves work through at least as many tasks as Q3.
    assert stats[("TD1", "Q8")]["tasks"] >= stats[("TD1", "Q3")]["tasks"]
