"""Fault-injection resilience benchmark.

Runs the paper's TPC-H queries on TD1 while a seeded fault injector
raises transient connector errors at rates {0%, 5%, 20%}.  With the
retry/backoff layer enabled, every query must return the same answer
as the fault-free run and leave no short-lived objects behind; the
table reports the success rate, the mean number of retries per query,
and the simulated runtime overhead relative to the fault-free row.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.bench.scenarios import build_tpch_deployment
from repro.connect.connector import RetryPolicy
from repro.core.client import XDB
from repro.errors import ReproError
from repro.faults import FaultInjector, FaultPolicy
from repro.workloads.tpch import QUERIES, query

FAULT_RATES = [0.0, 0.05, 0.20]
SEED = 1729
SCALE_FACTOR = 0.001


def run_rate_sweep():
    names = sorted(QUERIES)
    # Fault-free truth, computed on a pristine deployment.
    deployment, _ = build_tpch_deployment("TD1", SCALE_FACTOR)
    xdb = XDB(deployment)
    xdb.warm_metadata()
    truth = {name: xdb.submit(query(name)).result.sorted_rows() for name in names}

    rows = []
    baseline_seconds = None
    for rate in FAULT_RATES:
        # A fresh federation per rate: injected faults must not bleed
        # into the next configuration's counters or fault schedule.
        deployment, _ = build_tpch_deployment("TD1", SCALE_FACTOR)
        for connector in deployment.connectors.values():
            connector.retry_policy = RetryPolicy(max_attempts=10)
        xdb = XDB(deployment)
        xdb.warm_metadata()

        injector = FaultInjector(
            FaultPolicy(seed=SEED, transient_error_rate=rate)
        ).install(deployment)
        successes = 0
        identical = 0
        retries = 0
        total_seconds = 0.0
        leaked = 0
        try:
            for name in names:
                before = {
                    db: set(deployment.database(db).catalog.names())
                    for db in deployment.database_names()
                }
                try:
                    report = xdb.submit(query(name))
                except ReproError:
                    continue
                successes += 1
                if report.result.sorted_rows() == truth[name]:
                    identical += 1
                retries += report.resilience.retries
                total_seconds += report.total_seconds
                after = {
                    db: set(deployment.database(db).catalog.names())
                    for db in deployment.database_names()
                }
                leaked += sum(
                    len(after[db] - before[db]) for db in before
                )
        finally:
            injector.uninstall()

        if rate == 0.0:
            baseline_seconds = total_seconds
        overhead = (
            (total_seconds / baseline_seconds - 1.0)
            if baseline_seconds
            else 0.0
        )
        rows.append(
            [
                f"{rate:.0%}",
                f"{successes}/{len(names)}",
                f"{identical}/{len(names)}",
                f"{retries / max(successes, 1):.2f}",
                injector.injected_transients,
                leaked,
                round(total_seconds, 3),
                f"{overhead:+.1%}",
            ]
        )
    return rows


def test_fault_injection_sweep(benchmark, results_sink):
    rows = benchmark.pedantic(run_rate_sweep, rounds=1, iterations=1)
    table = format_table(
        [
            "fault_rate",
            "success",
            "identical",
            "mean_retries",
            "injected",
            "leaked_objects",
            "runtime_s",
            "overhead",
        ],
        rows,
    )
    results_sink(
        "fault_injection",
        "Fault injection — TPC-H on TD1, seeded transient faults\n"
        + table,
    )

    for row in rows:
        # Every query succeeds, answers match the fault-free run, and
        # no short-lived object survives.
        assert row[1] == f"{len(QUERIES)}/{len(QUERIES)}"
        assert row[2] == f"{len(QUERIES)}/{len(QUERIES)}"
        assert row[5] == 0
    # Faults actually fired at the non-zero rates...
    assert rows[1][4] > 0 and rows[2][4] > 0
    # ...and retrying them costs simulated time.
    assert float(rows[2][6]) >= float(rows[0][6])
