"""Figure 14 — data transferred during query execution (§VI-C).

Two managed-cloud scenarios with XDB/mediators in the cloud:

* **ONP** — DBMSes on-premise on one LAN: the metric is bytes entering
  the cloud.  XDB only ships control messages and the final result
  (~MBs), while Garlic/Presto centralize all intermediates.
* **GEO** — DBMSes in different data centers: the metric is WAN-crossing
  bytes; XDB's inter-DBMS movements now count, but remain far below the
  mediators' (up to orders of magnitude, query-dependent).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.workloads.tpch import QUERIES, query

from conftest import systems_for

DISTRIBUTIONS = ["TD1", "TD2"]


def run_transfer(td: str):
    onp = systems_for(td, topology="onprem", middleware_site="cloud")
    geo = systems_for(td, topology="geo", middleware_site="cloud")
    rows = []
    for name in sorted(QUERIES, key=lambda q: int(q[1:])):
        onp_records = onp.run_all(query(name), name)
        geo_records = geo.run_all(query(name), name)
        rows.append(
            [
                name,
                onp_records["XDB"].megabytes_to_cloud,
                geo_records["XDB"].megabytes_cross_site,
                onp_records["Garlic"].megabytes_to_cloud,
                onp_records["Presto"].megabytes_to_cloud,
            ]
        )
    return rows


@pytest.mark.parametrize("td", DISTRIBUTIONS)
def test_fig14_transfer(benchmark, results_sink, td):
    rows = benchmark.pedantic(
        run_transfer, args=(td,), rounds=1, iterations=1
    )
    table = format_table(
        [
            "query",
            "XDB(ONP)_MB",
            "XDB(GEO)_MB",
            "Garlic_MB",
            "Presto_MB",
        ],
        rows,
    )
    worst_ratio = max(row[3] / max(row[1], 1e-9) for row in rows)
    results_sink(
        f"fig14_transfer_{td.lower()}",
        f"Figure 14 ({td}) — data transferred to/through the cloud\n"
        f"{table}\nGarlic vs XDB(ONP): up to {worst_ratio:.0f}x more data",
    )

    for row in rows:
        name, xdb_onp, xdb_geo, garlic, presto = row
        # On-premise: XDB sends only control traffic + the final result.
        assert xdb_onp < garlic
        assert xdb_onp < presto
        # JDBC makes Presto's transfer the largest.
        assert presto > garlic
        # Geo-distributed XDB moves more than ONP (inter-DBMS traffic now
        # crosses the WAN) but still less than the mediators.
        assert xdb_geo >= xdb_onp * 0.99
        assert xdb_geo < presto
    # Orders-of-magnitude gap on at least one query (paper: up to 3).
    assert worst_ratio > 50
