"""Ablations over the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the individual design
decisions the paper argues for:

* **movement policy** — Eq. 1's cost-based i/e choice vs. forcing all
  movements implicit or explicit;
* **candidate pruning** — Rule 4's two-candidate restriction
  (`A({o_l, o_r})`) vs. the full O(|A|·|O|) search it replaces: the
  paper claims the pruned plan is as good while consulting far less;
* **pipelining** — the §V-B inter-DBMS pipelines vs. a fully
  materialized execution of the *same* plan;
* **plan shape** — the paper's left-deep restriction vs. bushy trees
  (its declared future work): bushy should never move more data and
  can improve the schedule via parallel subtrees.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.core.client import XDB
from repro.core.timing import simulate_schedule
from repro.workloads.tpch import query

from conftest import systems_for


def fresh_xdb(systems, **kwargs):
    xdb = XDB(systems.deployment, **kwargs)
    xdb.warm_metadata()
    return xdb


# -- movement policy ---------------------------------------------------------


def run_movement_ablation():
    systems = systems_for("TD1")
    rows = []
    for policy in ("cost", "implicit", "explicit"):
        xdb = fresh_xdb(systems, movement_policy=policy)
        for name in ("Q3", "Q5", "Q8"):
            report = xdb.submit(query(name))
            rows.append(
                [
                    name,
                    policy,
                    report.execution_seconds,
                    report.plan.movement_counts().__str__(),
                ]
            )
    return rows


def test_ablation_movement_policy(benchmark, results_sink):
    rows = benchmark.pedantic(run_movement_ablation, rounds=1, iterations=1)
    table = format_table(
        ["query", "policy", "exec_s", "movements"], rows
    )
    results_sink("ablation_movement_policy", "Movement policy\n" + table)

    by_policy = {}
    for name, policy, seconds, _ in rows:
        by_policy.setdefault(policy, 0.0)
        by_policy[policy] += seconds
    # Forcing materialization everywhere is clearly the worst.
    assert by_policy["explicit"] >= by_policy["implicit"]
    assert by_policy["cost"] < by_policy["explicit"]
    # FINDING: the cost-based Eq. 1 choice can trail the all-implicit
    # policy slightly — Eq. 1 prices the operator-level hash-build
    # benefit of materialization but not the schedule-level pipeline
    # overlap it forfeits (the paper's formulation shares this blind
    # spot: pipelining is cited qualitatively, not costed).
    assert by_policy["cost"] <= by_policy["implicit"] * 1.35


# -- Rule-4 candidate pruning ---------------------------------------------------


def run_pruning_ablation():
    systems = systems_for("TD3")  # 7 DBMSes: pruning matters most
    rows = []
    for pruned in (True, False):
        xdb = fresh_xdb(systems, prune_candidates=pruned)
        for name in ("Q5", "Q8"):
            report = xdb.submit(query(name))
            rows.append(
                [
                    name,
                    "pruned" if pruned else "full",
                    report.consultations,
                    report.execution_seconds,
                ]
            )
    return rows


def test_ablation_candidate_pruning(benchmark, results_sink):
    rows = benchmark.pedantic(run_pruning_ablation, rounds=1, iterations=1)
    table = format_table(
        ["query", "candidates", "consultations", "exec_s"], rows
    )
    results_sink("ablation_candidate_pruning", "Rule-4 pruning\n" + table)

    records = {(r[0], r[1]): r for r in rows}
    for name in ("Q5", "Q8"):
        pruned = records[(name, "pruned")]
        full = records[(name, "full")]
        # Full search consults far more often...
        assert full[2] > pruned[2] * 2
        # ...without materially better plans (paper's |R|+|S| > max
        # argument): pruned execution within 10% of the full search.
        assert pruned[3] <= full[3] * 1.10


# -- pipelining -----------------------------------------------------------------


def run_pipelining_ablation():
    systems = systems_for("TD1")
    xdb = fresh_xdb(systems)
    rows = []
    for name in ("Q3", "Q5", "Q8"):
        report = xdb.submit(query(name), cleanup=False)
        try:
            piped = report.schedule
            frozen = simulate_schedule(
                report.deployed,
                xdb.connectors,
                systems.deployment.network,
                systems.deployment.client_node,
                result_bytes=report.result.byte_size(),
                pipelined=False,
            )
            rows.append(
                [
                    name,
                    piped.execution_seconds,
                    frozen.execution_seconds,
                    frozen.execution_seconds / piped.execution_seconds,
                ]
            )
        finally:
            report.deployed.cleanup()
    return rows


def test_ablation_pipelining(benchmark, results_sink):
    rows = benchmark.pedantic(run_pipelining_ablation, rounds=1, iterations=1)
    table = format_table(
        ["query", "pipelined_s", "materialized_s", "slowdown"], rows
    )
    results_sink("ablation_pipelining", "Inter-DBMS pipelining\n" + table)
    for row in rows:
        assert row[2] >= row[1]  # materialization never helps
    # Pipelining provides a real benefit on at least one chained plan.
    assert any(row[3] > 1.1 for row in rows)


# -- plan shape --------------------------------------------------------------------


def run_shape_ablation():
    systems = systems_for("TD1")
    rows = []
    for shape in ("left-deep", "bushy"):
        xdb = fresh_xdb(systems, plan_shape=shape)
        for name in ("Q5", "Q8", "Q9"):
            report = xdb.submit(query(name))
            moved = sum(e.moved_rows or 0 for e in report.plan.edges)
            rows.append(
                [name, shape, report.execution_seconds, moved,
                 report.plan.task_count()]
            )
    return rows


def test_ablation_plan_shape(benchmark, results_sink):
    rows = benchmark.pedantic(run_shape_ablation, rounds=1, iterations=1)
    table = format_table(
        ["query", "shape", "exec_s", "rows_moved", "tasks"], rows
    )
    results_sink("ablation_plan_shape", "Left-deep vs bushy\n" + table)

    records = {(r[0], r[1]): r for r in rows}
    for name in ("Q5", "Q8", "Q9"):
        left_deep = records[(name, "left-deep")]
        bushy = records[(name, "bushy")]
        # Bushy must return the same results (checked by submit's
        # machinery) and should not be substantially worse.
        assert bushy[2] <= left_deep[2] * 1.5
