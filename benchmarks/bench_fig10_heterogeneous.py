"""Figure 10 — heterogeneous DBMSes (TD1).

MariaDB for db2, Hive for db3, PostgreSQL for the rest; inter-DBMS
communication falls back to ODBC/JDBC wrappers.  The paper observes
XDB still outperforming a 4-worker Presto by ~2× on average — smaller
than in the homogeneous setup because XDB's execution now depends on
the weakest underlying engines.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.bench.scenarios import HETEROGENEOUS_PROFILES
from repro.workloads.tpch import QUERIES, query

from conftest import systems_for


def run_fig10():
    hetero = systems_for(
        "TD1", profiles=tuple(sorted(HETEROGENEOUS_PROFILES.items()))
    )
    homo = systems_for("TD1")
    rows = []
    for name in sorted(QUERIES, key=lambda q: int(q[1:])):
        hetero_records = hetero.run_all(query(name), name)
        homo_xdb = homo.run_all(query(name), name)["XDB"]
        rows.append(
            [
                name,
                hetero_records["XDB"].total_seconds,
                hetero_records["Presto"].total_seconds,
                hetero_records["Presto"].total_seconds
                / hetero_records["XDB"].total_seconds,
                homo_xdb.total_seconds,
            ]
        )
    return rows


def test_fig10_heterogeneous(benchmark, results_sink):
    rows = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    table = format_table(
        [
            "query",
            "XDB_hetero_s",
            "Presto4_s",
            "speedup",
            "XDB_homogeneous_s",
        ],
        rows,
    )
    average = sum(row[3] for row in rows) / len(rows)
    results_sink(
        "fig10_heterogeneous",
        "Figure 10 — heterogeneous engines (MariaDB db2, Hive db3)\n"
        f"{table}\naverage XDB speedup vs Presto: {average:.1f}x",
    )

    # XDB wins on the vast majority of queries and by ~2x on average
    # (Q8 may flip: its plan chains two Hive tasks, each paying Hive's
    # large startup latency — the weakest-link effect of §VI-B).
    wins = sum(1 for row in rows if row[1] < row[2])
    assert wins >= len(rows) - 1
    assert average > 1.5
    # XDB is slower than with all-PostgreSQL engines.
    assert sum(row[1] for row in rows) > sum(row[4] for row in rows)
