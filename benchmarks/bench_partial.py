"""Partial-chaos benchmark — task-level fault domains under load.

Three seeded scenarios over a hash-partitioned four-engine federation:

1. **Branch failover**: a per-submission single-shard outage strikes
   the shard's primary holder while every shard has a replica.  The
   repair must stay *branch-local*: availability 1.0 with zero
   whole-query ``repair_attempts`` — only ``branch_repairs`` — and
   completed sibling snapshots pinned (reused), never recomputed.
2. **Hedged stragglers**: the worker pool drains branch sets where one
   seeded branch straggles; with a hedge policy the p99 makespan must
   improve at least 1.5× over the unhedged pool.
3. **Partial results**: a shard with no replica dies; an
   ``allow_partial`` submission must return a row-subset of the
   fault-free oracle with completeness exactly the missing shards'
   row-weighted fraction.

Standalone (like ``bench_drift.py``) so CI can gate on it cheaply::

    python benchmarks/bench_partial.py                  # default seed
    python benchmarks/bench_partial.py --seed 7 --check

Writes ``benchmarks/results/BENCH_partial.json``; ``--check`` exits
non-zero when any gate fails.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import random
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.client import XDB  # noqa: E402
from repro.core.partition import partition_name  # noqa: E402
from repro.engine.parallel import (  # noqa: E402
    HedgePolicy,
    WorkerPool,
    check_cancelled,
)
from repro.errors import ReproError  # noqa: E402
from repro.faults import (  # noqa: E402
    EngineOutage,
    FaultInjector,
    FaultPolicy,
)
from repro.federation.deployment import Deployment  # noqa: E402
from repro.qos import QoSPolicy  # noqa: E402
from repro.relational.schema import Field, Schema  # noqa: E402
from repro.sql.types import DOUBLE, INTEGER  # noqa: E402

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_partial.json"
)

DBS = ["p1", "p2", "p3", "p4"]

ORDERS = Schema(
    [
        Field("o_orderkey", INTEGER),
        Field("o_custkey", INTEGER),
        Field("o_total", DOUBLE),
    ]
)
ORDERS_ROWS = [(i, i % 10, float(i * 7 % 90)) for i in range(120)]

AGG_SQL = """
    SELECT o_custkey, SUM(o_total) AS total
    FROM orders
    GROUP BY o_custkey
    ORDER BY total DESC, o_custkey
"""

SCAN_SQL = "SELECT o_orderkey, o_custkey FROM orders ORDER BY o_orderkey"


def build_sharded(replicated: bool) -> Deployment:
    """orders hash-sharded over four engines; optionally every shard
    also replicated onto the next engine (a healthy failover target)."""
    dep = Deployment(
        {name: "postgres" for name in DBS}, parallel_workers=2
    )
    dep.load_table("p1", "orders", ORDERS, ORDERS_ROWS)
    dep.partition_table("orders", "o_orderkey", DBS)
    if replicated:
        for index in range(len(DBS)):
            dep.replicate_table(
                partition_name("orders", index),
                DBS[(index + 1) % len(DBS)],
            )
    return dep


def oracle_rows(sql: str):
    dep = Deployment({"T": "postgres"})
    dep.load_table("T", "orders", ORDERS, ORDERS_ROWS)
    return XDB(dep).submit(sql).result.rows


# -- scenario 1: branch-local failover ------------------------------------


def run_failover(seed: int, submissions: int) -> dict:
    rng = random.Random(seed)
    dep = build_sharded(replicated=True)
    xdb = XDB(dep, movement_policy="explicit")
    xdb.warm_metadata()
    truth = sorted(oracle_rows(AGG_SQL))
    baseline = xdb.submit(AGG_SQL)

    timeline = []
    ok = 0
    repair_attempts = 0
    branch_repairs = 0
    pinned_total = 0
    placement = dict(baseline.recovery.placement)
    for index in range(submissions):
        shard_index = rng.randrange(len(DBS))
        shard = partition_name("orders", shard_index)
        holder = placement.get(shard, DBS[shard_index])
        injector = FaultInjector(
            FaultPolicy(outages=(EngineOutage(db=holder, table=shard),))
        ).install(dep)
        record = {"index": index, "shard": shard, "holder": holder}
        try:
            report = xdb.submit(AGG_SQL)
        except ReproError as exc:
            record["outcome"] = "error"
            record["error"] = f"{type(exc).__name__}: {exc}"
        else:
            ok += 1
            recovery = report.recovery
            record["outcome"] = "ok"
            record["correct"] = (
                sorted(tuple(r) for r in report.result.rows)
                == [tuple(r) for r in truth]
            )
            record["repair_attempts"] = recovery.repair_attempts
            record["branch_repairs"] = recovery.branch_repairs
            record["pinned_tasks"] = len(recovery.pinned_tasks)
            record["events"] = [
                list(event) for event in recovery.branch_events
            ]
            repair_attempts += recovery.repair_attempts
            branch_repairs += recovery.branch_repairs
            pinned_total += len(recovery.pinned_tasks)
            placement = dict(recovery.placement)
        finally:
            injector.uninstall()
            # The disk behind the shard is back: fresh truth re-admits
            # the struck holder (clears its quarantine), so the next
            # seeded outage exercises a fresh branch repair.
            xdb.catalog.reintrospect(holder, shard)
        timeline.append(record)
    return {
        "submissions": submissions,
        "ok": ok,
        "availability": ok / submissions if submissions else 0.0,
        "correct": all(
            r.get("correct", False)
            for r in timeline
            if r["outcome"] == "ok"
        ),
        "repair_attempts": repair_attempts,
        "branch_repairs": branch_repairs,
        "pinned_tasks": pinned_total,
        "breakers_open": sorted(
            db for db in DBS if dep.health.is_open(db)
        ),
        "shard_outages_seen": len(dep.health.shard_outages),
        "timeline": timeline,
    }


# -- scenario 2: hedged stragglers ----------------------------------------


def _branch(duration: float):
    def run():
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            check_cancelled()
            time.sleep(0.002)
        return duration

    return run


def run_hedging(seed: int, trials: int) -> dict:
    rng = random.Random(seed * 7919)
    branch_count = 8
    base = 0.02
    straggle = 0.5
    pool = WorkerPool(branch_count + 2)

    def one_trial(hedged: bool) -> float:
        straggler = rng.randrange(branch_count)
        durations = [base] * branch_count
        durations[straggler] = straggle
        hedge = (
            HedgePolicy(
                multiplier=3.0,
                factory=lambda index: _branch(base),
                poll_seconds=0.001,
            )
            if hedged
            else None
        )
        started = time.monotonic()
        outcomes = pool.map(
            [_branch(d) for d in durations], hedge=hedge
        )
        elapsed = time.monotonic() - started
        assert len(outcomes) == branch_count
        return elapsed

    unhedged = sorted(one_trial(False) for _ in range(trials))
    hedged = sorted(one_trial(True) for _ in range(trials))

    def p99(samples):
        return samples[min(len(samples) - 1, int(len(samples) * 0.99))]

    return {
        "trials": trials,
        "branches": branch_count,
        "base_seconds": base,
        "straggler_seconds": straggle,
        "p99_unhedged_seconds": p99(unhedged),
        "p99_hedged_seconds": p99(hedged),
        "p99_speedup": (
            p99(unhedged) / p99(hedged) if p99(hedged) > 0 else 0.0
        ),
        "mean_unhedged_seconds": sum(unhedged) / len(unhedged),
        "mean_hedged_seconds": sum(hedged) / len(hedged),
    }


# -- scenario 3: policy-bounded partial results ---------------------------


def run_partial(seed: int) -> dict:
    rng = random.Random(seed * 104729)
    dep = build_sharded(replicated=False)
    xdb = XDB(dep)
    xdb.warm_metadata()
    truth = {tuple(r) for r in oracle_rows(SCAN_SQL)}

    shard_index = rng.randrange(len(DBS))
    shard = partition_name("orders", shard_index)
    holder = DBS[shard_index]
    lost = xdb.catalog.stats_of(holder, shard).row_count
    expected = (len(ORDERS_ROWS) - lost) / len(ORDERS_ROWS)

    with FaultInjector(
        FaultPolicy(outages=(EngineOutage(db=holder, table=shard),))
    ).install(dep):
        report = xdb.submit(
            SCAN_SQL,
            qos=QoSPolicy(allow_partial=True, completeness_floor=0.0),
        )
    got = {tuple(r) for r in report.result.rows}
    recovery = report.recovery
    return {
        "shard": shard,
        "holder": holder,
        "oracle_rows": len(truth),
        "partial_rows": len(got),
        "subset": got < truth,
        "partial": recovery.partial,
        "completeness": recovery.completeness,
        "expected_completeness": expected,
        "missing_partitions": list(recovery.missing_partitions),
        "repair_attempts": recovery.repair_attempts,
        "qos_partial": bool(report.qos is not None and report.qos.partial),
        "breaker_open": dep.health.is_open(holder),
    }


# -- gates ----------------------------------------------------------------


def check(report: dict) -> list:
    problems = []
    failover = report["failover"]
    if failover["availability"] != 1.0:
        problems.append(
            f"failover availability {failover['availability']:.3f} != 1.0"
        )
    if not failover["correct"]:
        problems.append("a failover submission returned wrong rows")
    if failover["repair_attempts"] != 0:
        problems.append(
            f"{failover['repair_attempts']} whole-query repair(s) — "
            "branch failover must stay branch-local"
        )
    if failover["branch_repairs"] == 0:
        problems.append("the seeded outages never exercised a branch repair")
    if failover["pinned_tasks"] == 0:
        problems.append("no completed sibling snapshot was ever pinned")
    if failover["breakers_open"]:
        problems.append(
            f"shard faults tripped engine breakers: "
            f"{failover['breakers_open']}"
        )
    hedging = report["hedging"]
    if hedging["p99_speedup"] < 1.5:
        problems.append(
            f"hedged p99 speedup {hedging['p99_speedup']:.2f}x < 1.5x"
        )
    partial = report["partial"]
    if not partial["subset"]:
        problems.append(
            "the partial answer is not a strict row-subset of the oracle"
        )
    if not partial["partial"] or not partial["qos_partial"]:
        problems.append("the partial degrade was not reported as partial")
    if abs(partial["completeness"] - partial["expected_completeness"]) > 1e-9:
        problems.append(
            f"completeness {partial['completeness']:.4f} != missing-shard "
            f"fraction {partial['expected_completeness']:.4f}"
        )
    if partial["repair_attempts"] != 0:
        problems.append(
            "the partial degrade consumed whole-query repair budget"
        )
    if partial["breaker_open"]:
        problems.append("the shard fault tripped the engine breaker")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11,
                        help="scenario seed (default 11)")
    parser.add_argument("--submissions", type=int, default=8,
                        help="failover submissions (default 8)")
    parser.add_argument("--trials", type=int, default=5,
                        help="hedging trials per arm (default 5)")
    parser.add_argument("--out", type=pathlib.Path, default=RESULTS_PATH,
                        help=f"output JSON path (default {RESULTS_PATH})")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on gate violations")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "partial-chaos",
        "seed": args.seed,
        "python": platform.python_version(),
        "config": {
            "submissions": args.submissions,
            "trials": args.trials,
            "rows": len(ORDERS_ROWS),
            "engines": DBS,
        },
        "failover": run_failover(args.seed, args.submissions),
        "hedging": run_hedging(args.seed, args.trials),
        "partial": run_partial(args.seed),
    }

    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    failover, hedging, partial = (
        report["failover"], report["hedging"], report["partial"],
    )
    print(
        f"failover: availability {failover['availability']:.3f}, "
        f"{failover['branch_repairs']} branch repair(s), "
        f"{failover['repair_attempts']} query repair(s), "
        f"{failover['pinned_tasks']} sibling snapshot(s) pinned"
    )
    print(
        f"hedging: p99 {hedging['p99_unhedged_seconds']:.3f}s -> "
        f"{hedging['p99_hedged_seconds']:.3f}s "
        f"({hedging['p99_speedup']:.2f}x)"
    )
    print(
        f"partial: {partial['partial_rows']}/{partial['oracle_rows']} rows, "
        f"completeness {partial['completeness']:.3f} "
        f"(expected {partial['expected_completeness']:.3f}), "
        f"missing {partial['missing_partitions']}"
    )
    if args.check:
        problems = check(report)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
