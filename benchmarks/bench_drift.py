"""Drift chaos benchmark — schema drift + outages over a TPC-H workload.

Drives one XDB client through a seeded TPC-H query stream while a
:class:`repro.drift.DriftSchedule` mutates the live schemas between
submissions (four drift kinds at a 10% per-gap rate; the workload's
referenced columns are protected so every drift is *recoverable*).
Every fifth submission is a ``SELECT *`` schema probe, which is where
stale plans actually collide with drifted tables and exercise the
re-introspect → invalidate → replan recovery path.  Two mid-cascade
outage windows leak delegated objects into the ledger, and one
crashed-client orphan is planted directly, so the epoch-fenced reaper
has real debt to pay down.

Standalone (like ``bench_overload.py``) so CI can gate on it cheaply::

    python benchmarks/bench_drift.py                  # default seed
    python benchmarks/bench_drift.py --seed 7 --check

Writes ``benchmarks/results/BENCH_drift.json`` with availability,
recovery-latency, and orphan-count-over-time curves; ``--check`` exits
non-zero if availability or the drift-recovery success ratio falls
below 0.9, no drift was ever absorbed, or the final ``XDB.reap()``
leaves orphans on the (healthy) engines.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.scenarios import build_tpch_deployment  # noqa: E402
from repro.core.client import XDB  # noqa: E402
from repro.drift import DriftSchedule  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.faults import EngineOutage, FaultInjector, FaultPolicy  # noqa: E402
from repro.relational.schema import Field, Schema  # noqa: E402
from repro.sql.types import INTEGER  # noqa: E402
from repro.workloads.tpch import QUERIES, query  # noqa: E402

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_drift.json"
)

#: per-gap drift probability (the issue's 10% rate)
DRIFT_RATE = 0.10
#: micro scale factor — drift chaos measures control flow, not data
SCALE_FACTOR = 0.001
#: every Nth submission is a SELECT * schema probe (stale plans meet
#: drifted schemas here; the TPC-H queries' columns are protected)
PROBE_EVERY = 5
#: submissions whose exec phase runs under a mid-cascade outage window
#: (index -> struck DBMS); these leak delegated objects for the reaper
OUTAGE_AT = {20: "db2", 40: "db3"}


def protected_columns(sqls) -> set:
    """Every identifier-ish token the workload references.

    Over-approximating (keywords, aliases) is fine: protecting a name
    only removes it from the drop/rename candidate pool, and the
    schedule still drifts freely via add/widen and the unreferenced
    columns.
    """
    tokens = set()
    for sql in sqls:
        tokens.update(re.findall(r"[a-z_][a-z0-9_]*", sql.lower()))
    return tokens


def base_tables(deployment):
    """(db, table) pairs of every stored base table."""
    out = []
    for db_name in sorted(deployment.databases):
        for table in deployment.database(db_name).catalog.tables():
            if not table.name.lower().startswith(("xf_", "xm_", "xv_")):
                out.append((db_name, table.name))
    return out


def orphan_count(xdb) -> int:
    return sum(len(held) for held in xdb.reaper.audit().values())


def run_chaos(seed: int, submissions: int) -> dict:
    deployment, _ = build_tpch_deployment("TD1", SCALE_FACTOR)
    xdb = XDB(deployment)
    xdb.warm_metadata()

    workload = sorted(QUERIES, key=lambda name: int(name[1:]))
    schedule = DriftSchedule(
        deployment,
        seed=seed,
        rate=DRIFT_RATE,
        protected_columns=protected_columns(
            query(name) for name in workload
        ),
    )
    probes = base_tables(deployment)

    # One crashed predecessor's leftover: on the engine, in the ledger,
    # leaked, and from an epoch that is not (and never will be) live.
    planted = ("db1", "xm_900_crashed")
    deployment.database(planted[0]).create_table(
        planted[1], Schema([Field("x", INTEGER)]), [(1,)]
    )
    xdb.ledger.record(planted[0], "TABLE", planted[1], epoch=900)
    xdb.ledger.mark_leaked(planted[0], planted[1])

    timeline = []
    drifts_applied = 0
    for index in range(submissions):
        drift = schedule.maybe_drift()
        if drift is not None:
            drifts_applied += 1
        if index % PROBE_EVERY == PROBE_EVERY - 1:
            db, table = probes[(index // PROBE_EVERY) % len(probes)]
            sql = f"SELECT * FROM {table}"
            name = f"probe:{table}"
        else:
            name = workload[index % len(workload)]
            sql = query(name)

        injector = None
        if index in OUTAGE_AT:
            injector = FaultInjector(
                FaultPolicy(
                    outages=(
                        EngineOutage(db=OUTAGE_AT[index], after_calls=2),
                    )
                )
            ).install(deployment)
        record = {
            "index": index,
            "query": name,
            "drift": (
                f"{drift.kind} {drift.db}.{drift.table}.{drift.column}"
                if drift is not None
                else None
            ),
        }
        try:
            report = xdb.submit(sql)
        except ReproError as exc:
            record["outcome"] = "error"
            record["error"] = f"{type(exc).__name__}: {exc}"
        else:
            record["outcome"] = "ok"
            record["rows"] = len(report.result)
            record["drift_events"] = report.recovery.drift_events
            record["quarantined"] = len(report.recovery.quarantined)
            if report.recovery.drifted:
                record["recovery_seconds"] = report.recovery.repair_seconds
            record["leaked_objects"] = report.resilience.leaked_objects
        finally:
            if injector is not None:
                injector.uninstall()
                # The engine is back: the next half-open probe succeeds
                # and (via the recovery listener) schedules the
                # deferred orphan sweep on a later submission.
                deployment.health.record_success(OUTAGE_AT[index])
        record["orphans_held"] = orphan_count(xdb)
        timeline.append(record)

    orphans_before_reap = orphan_count(xdb)
    reap = xdb.reap()
    orphans_after_reap = orphan_count(xdb)

    ok = [r for r in timeline if r["outcome"] == "ok"]
    absorbed = [r for r in ok if r.get("drift_events")]
    drift_failures = [
        r
        for r in timeline
        if r["outcome"] == "error" and r["index"] not in OUTAGE_AT
    ]
    detections = len(absorbed) + len(drift_failures)
    recovery_latencies = sorted(
        r["recovery_seconds"] for r in absorbed
    )
    return {
        "submissions": len(timeline),
        "ok": len(ok),
        "availability": len(ok) / len(timeline) if timeline else 0.0,
        "drifts_applied": drifts_applied,
        "drifts_absorbed": sum(r.get("drift_events", 0) for r in ok),
        "drift_detections": detections,
        "recovery_success_ratio": (
            len(absorbed) / detections if detections else 1.0
        ),
        "recovery_latency_seconds": {
            "mean": (
                sum(recovery_latencies) / len(recovery_latencies)
                if recovery_latencies
                else 0.0
            ),
            "max": recovery_latencies[-1] if recovery_latencies else 0.0,
        },
        "outage_submissions": sorted(OUTAGE_AT),
        "error_samples": [
            r["error"] for r in timeline if r["outcome"] == "error"
        ][:5],
        "orphans_before_reap": orphans_before_reap,
        "orphans_after_reap": orphans_after_reap,
        "reap": {
            "dropped": len(reap.dropped),
            "kept_live": len(reap.kept_live),
            "failed": len(reap.failed),
            "unreachable": sorted(reap.unreachable),
            "reconciled": len(reap.reconciled),
        },
        "leaked_outstanding": xdb.ledger.leaked_count(),
        "timeline": timeline,
    }


def check(report: dict) -> list:
    """The regression gate; returns a list of violation strings."""
    run = report["run"]
    problems = []
    if run["availability"] < 0.90:
        problems.append(
            f"availability {run['availability']:.3f} < 0.90"
        )
    if run["recovery_success_ratio"] < 0.90:
        problems.append(
            f"drift-recovery success ratio "
            f"{run['recovery_success_ratio']:.3f} < 0.90"
        )
    if run["drifts_applied"] == 0:
        problems.append("the seeded schedule never applied a drift")
    if run["drifts_absorbed"] == 0:
        problems.append("no drift was ever detected and absorbed")
    if run["orphans_after_reap"] != 0:
        problems.append(
            f"{run['orphans_after_reap']} orphan(s) survived the final "
            "reap on healthy engines"
        )
    if run["reap"]["unreachable"]:
        problems.append(
            f"final reap could not reach {run['reap']['unreachable']}"
        )
    if run["leaked_outstanding"] != 0:
        problems.append(
            f"{run['leaked_outstanding']} ledger entr(ies) still "
            "leaked after the final reap"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11,
                        help="drift-schedule seed (default 11)")
    parser.add_argument("--submissions", type=int, default=60,
                        help="total query submissions (default 60)")
    parser.add_argument("--out", type=pathlib.Path, default=RESULTS_PATH,
                        help=f"output JSON path (default {RESULTS_PATH})")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on gate violations")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "drift-chaos",
        "seed": args.seed,
        "python": platform.python_version(),
        "config": {
            "scale_factor": SCALE_FACTOR,
            "drift_rate": DRIFT_RATE,
            "probe_every": PROBE_EVERY,
            "outage_at": {
                str(k): v for k, v in sorted(OUTAGE_AT.items())
            },
            "submissions": args.submissions,
        },
        "run": run_chaos(args.seed, args.submissions),
    }

    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    run = report["run"]
    print(
        f"availability {run['availability']:.3f} "
        f"({run['ok']}/{run['submissions']}), "
        f"{run['drifts_applied']} drift(s) applied, "
        f"{run['drifts_absorbed']} absorbed, "
        f"recovery success {run['recovery_success_ratio']:.3f}, "
        f"mean recovery "
        f"{run['recovery_latency_seconds']['mean']:.3f}s"
    )
    print(
        f"orphans: {run['orphans_before_reap']} before reap, "
        f"{run['orphans_after_reap']} after "
        f"({run['reap']['dropped']} dropped, "
        f"{run['reap']['reconciled']} reconciled); "
        f"leaked outstanding {run['leaked_outstanding']}"
    )
    if args.check:
        problems = check(report)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
