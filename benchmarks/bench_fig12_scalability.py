"""Figures 12a–12c — data scalability of individual queries.

Q3 (3 tables), Q9 (6 tables), and Q8 (8 tables) under TD1 across
increasing scale factors.  Paper findings: XDB outperforms Garlic and
Presto at every scale, and its runtime grows proportionally to the
intermediate data moved.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.workloads.tpch import query

from conftest import SWEEP_SFS, systems_for

QUERY_NAMES = ["Q3", "Q9", "Q8"]


def run_query_sweep(name: str):
    rows = []
    for sf in SWEEP_SFS:
        systems = systems_for("TD1", scale_factor=sf)
        records = systems.run_all(query(name), name)
        rows.append(
            [
                sf,
                records["XDB"].total_seconds,
                records["Garlic"].total_seconds,
                records["Presto"].total_seconds,
                records["XDB"].megabytes_total,
            ]
        )
    return rows


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_fig12_scalability(benchmark, results_sink, name):
    rows = benchmark.pedantic(
        run_query_sweep, args=(name,), rounds=1, iterations=1
    )
    table = format_table(
        ["micro_sf", "XDB_s", "Garlic_s", "Presto4_s", "XDB_moved_MB"],
        rows,
    )
    results_sink(
        f"fig12_scalability_{name.lower()}",
        f"Figure 12 — scalability of {name} (TD1)\n{table}",
    )

    # XDB wins at every scale factor.
    for row in rows:
        assert row[1] < row[2] and row[1] < row[3]
    # Runtimes and moved data grow with the scale factor.  (Exact
    # proportionality does not hold because the cost-based optimizer may
    # pick different — cheaper — delegation plans at different scales.)
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][4] > rows[0][4]
