"""Partition scaling benchmark — intra-query parallelism over TPC-H.

Runs Q3, Q8, and Q9 against a four-engine federation whose fact tables
(``orders`` and ``lineitem``) are hash-partitioned on the order key at
1, 4, and 16 partitions, with every dimension replicated to every
engine so each shard's join fragment stays in-situ.  Per configuration
it records two independent clocks:

* **simulated schedule seconds** — the decentralized-execution model
  with per-engine worker slots, where co-partitioned branch tasks
  overlap across engines;
* **real worker-pool seconds** — measured per-branch thread-CPU busy
  time from the gathering engine's :class:`WorkerPool`, folded into a
  K-wide wall clock with LPT list scheduling (:func:`makespan`).
  Thread CPU is the honest base under the GIL: concurrent branches'
  wall clocks double-count contention, busy seconds do not.

Standalone (like ``bench_drift.py``) so CI can gate on it cheaply::

    python benchmarks/bench_partition.py
    python benchmarks/bench_partition.py --check

Writes ``benchmarks/results/BENCH_partition.json``; ``--check`` exits
non-zero unless every query shows >= 2x speedup at 4 partitions on
*both* clocks, co-partitioned joins move zero cross-shard bytes, and
every partitioned configuration returns the unpartitioned rows.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.scenarios import build_tpch_deployment  # noqa: E402
from repro.core.client import XDB  # noqa: E402
from repro.core.partition import cross_shard_bytes  # noqa: E402
from repro.engine.parallel import makespan  # noqa: E402
from repro.workloads.tpch import query  # noqa: E402

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_partition.json"
)

#: scale factor — large enough that per-shard scan/join work dominates
#: the fixed per-task costs the speedup has to amortize
SCALE_FACTOR = 0.05
QUERY_NAMES = ("Q3", "Q8", "Q9")
PARTITION_COUNTS = (1, 4, 16)
#: per-engine worker-pool width for the partitioned configurations
WORKERS = 4
#: the speedup floor --check enforces at 4 partitions, on both clocks
SPEEDUP_FLOOR = 2.0

#: everything that is not a partitioned fact table gets replicated to
#: every engine, so branch joins never leave their shard
DIMENSIONS = (
    "customer", "part", "supplier", "partsupp", "nation", "region",
)


def build_sharded(partitions: int, scale_factor: float):
    """TD1 data, dimensions replicated everywhere, facts partitioned."""
    deployment, _ = build_tpch_deployment("TD1", scale_factor)
    dbs = sorted(deployment.databases)
    for table in DIMENSIONS:
        holders = [
            db for db in dbs
            if deployment.database(db).catalog.get(table) is not None
        ]
        for db in dbs:
            if db not in holders:
                deployment.replicate_table(table, db, from_db=holders[0])
    if partitions > 1:
        by_db = [dbs[i % len(dbs)] for i in range(partitions)]
        deployment.partition_table("orders", "o_orderkey", by_db)
        deployment.partition_table("lineitem", "l_orderkey", by_db)
    workers = WORKERS if partitions > 1 else 1
    deployment.parallel_workers = workers
    for database in deployment.databases.values():
        database.parallel_workers = workers
    return deployment, workers


def branch_busy_seconds(report) -> list:
    """Measured thread-CPU busy time of every pool branch span."""
    busy = []

    def walk(span):
        if span.kind == "parallel":
            busy.append(float(span.attributes["busy_seconds"]))
        for child in span.children:
            walk(child)

    walk(report.context.tracer.root)
    return busy


def normalized_rows(rows, places: int = 2) -> list:
    out = []
    for row in rows:
        out.append(
            tuple(
                round(value, places) if isinstance(value, float) else value
                for value in row
            )
        )
    return sorted(map(repr, out))


def run_scaling(scale_factor: float) -> dict:
    queries = {}
    for name in QUERY_NAMES:
        configs = []
        truth = None
        for partitions in PARTITION_COUNTS:
            deployment, workers = build_sharded(partitions, scale_factor)
            xdb = XDB(deployment)
            xdb.warm_metadata()
            report = xdb.submit(query(name))

            rows = normalized_rows(report.result.rows)
            if truth is None:
                truth = rows  # the unpartitioned run is the oracle
            busy = branch_busy_seconds(report)
            serial = sum(busy)
            pool = makespan(busy, workers)
            configs.append(
                {
                    "partitions": partitions,
                    "workers": workers,
                    "tasks": len(report.plan.tasks),
                    "rows": len(report.result),
                    "matches_unpartitioned": rows == truth,
                    "sim_exec_seconds": report.schedule.execution_seconds,
                    "sim_total_seconds": report.schedule.total_seconds,
                    "cross_shard_bytes": cross_shard_bytes(report.plan),
                    "transfer_bytes": report.transfers.total_bytes,
                    "pool": {
                        "branches": len(busy),
                        "serial_seconds": serial,
                        "pool_seconds": pool,
                        "speedup": serial / pool if pool else None,
                    },
                }
            )

        by_count = {c["partitions"]: c for c in configs}
        base = by_count[PARTITION_COUNTS[0]]

        def sim_speedup(partitions):
            sim = by_count[partitions]["sim_exec_seconds"]
            return base["sim_exec_seconds"] / sim if sim else None

        queries[name] = {
            "configs": configs,
            "sim_speedup_at_4": sim_speedup(4),
            "sim_speedup_at_16": sim_speedup(16),
            "real_speedup_at_4": by_count[4]["pool"]["speedup"],
            "real_speedup_at_16": by_count[16]["pool"]["speedup"],
        }
    return queries


def check(report: dict) -> list:
    """The regression gate; returns a list of violation strings."""
    problems = []
    for name, run in report["queries"].items():
        for metric in ("sim_speedup_at_4", "real_speedup_at_4"):
            value = run[metric]
            if value is None or value < SPEEDUP_FLOOR:
                problems.append(
                    f"{name}: {metric} "
                    f"{'missing' if value is None else f'{value:.2f}'} "
                    f"< {SPEEDUP_FLOOR:.1f}"
                )
        for config in run["configs"]:
            label = f"{name}@{config['partitions']}"
            if config["cross_shard_bytes"] != 0:
                problems.append(
                    f"{label}: co-partitioned join moved "
                    f"{config['cross_shard_bytes']} cross-shard byte(s)"
                )
            if not config["matches_unpartitioned"]:
                problems.append(
                    f"{label}: rows diverge from the unpartitioned run"
                )
            if config["partitions"] > 1 and not config["pool"]["branches"]:
                problems.append(
                    f"{label}: no worker-pool branches were traced"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale-factor", type=float, default=SCALE_FACTOR,
        help=f"TPC-H scale factor (default {SCALE_FACTOR})",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=RESULTS_PATH,
        help=f"output JSON path (default {RESULTS_PATH})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on gate violations",
    )
    args = parser.parse_args(argv)

    report = {
        "benchmark": "partition-scaling",
        "python": platform.python_version(),
        "config": {
            "scale_factor": args.scale_factor,
            "queries": list(QUERY_NAMES),
            "partition_counts": list(PARTITION_COUNTS),
            "workers": WORKERS,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        "queries": run_scaling(args.scale_factor),
    }

    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    for name, run in report["queries"].items():
        print(
            f"{name}: sim x{run['sim_speedup_at_4']:.2f} @4 "
            f"(x{run['sim_speedup_at_16']:.2f} @16), "
            f"pool x{run['real_speedup_at_4']:.2f} @4 "
            f"(x{run['real_speedup_at_16']:.2f} @16), "
            "cross-shard bytes "
            f"{[c['cross_shard_bytes'] for c in run['configs']]}"
        )
    if args.check:
        problems = check(report)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
