"""Figures 15a–15b — XDB query-processing phase breakdown (§VI-E).

Per query and scale factor: prep (parse + metadata gathering), lopt
(logical optimization), ann (annotation + finalization, including the
consultation round-trips), and exec (delegation + decentralized
execution).  Paper findings: prep/lopt/ann stay below ~10 s and their
share shrinks from ~50% at sf 1 to a few percent at large scale; lopt
and ann are scale-independent.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_xdb
from repro.bench.reporting import format_table
from repro.core.client import XDB
from repro.workloads.tpch import query

from conftest import SWEEP_SFS, systems_for

SCENARIOS = [("Q3", "TD1"), ("Q8", "TD3")]


def run_breakdown(name: str, td: str):
    rows = []
    for sf in SWEEP_SFS:
        systems = systems_for(td, scale_factor=sf)
        # Force a fresh metadata pass so prep is measured every time,
        # as in the paper's per-query accounting.
        systems.xdb.invalidate_metadata()
        record = run_xdb(
            systems.deployment, query(name), name, xdb=systems.xdb
        )
        phases = record.extra
        overhead = phases["prep"] + phases["lopt"] + phases["ann"]
        rows.append(
            [
                sf,
                phases["prep"],
                phases["lopt"],
                phases["ann"],
                phases["exec"],
                f"{overhead / record.total_seconds:.0%}",
                int(phases["consultations"]),
            ]
        )
    return rows


@pytest.mark.parametrize("name,td", SCENARIOS)
def test_fig15_breakdown(benchmark, results_sink, name, td):
    rows = benchmark.pedantic(
        run_breakdown, args=(name, td), rounds=1, iterations=1
    )
    table = format_table(
        [
            "micro_sf",
            "prep_s",
            "lopt_s",
            "ann_s",
            "exec_s",
            "overhead_share",
            "consultations",
        ],
        rows,
    )
    results_sink(
        f"fig15_breakdown_{name.lower()}_{td.lower()}",
        f"Figure 15 — phase breakdown, {name}; {td}\n{table}",
    )

    first, last = rows[0], rows[-1]
    # exec grows with scale...
    assert last[4] > first[4]
    # ...while the optimization phases stay roughly constant: their share
    # of the total shrinks as data grows.
    first_share = float(first[5].rstrip("%"))
    last_share = float(last[5].rstrip("%"))
    assert last_share <= first_share
    # ann consultations are scale-independent (plan-dependent only).
    assert first[6] == last[6]
    # Consultation count = 4 per cross-database join.
    assert first[6] % 4 == 0


def test_fig15_q8_td3_has_most_consultations(benchmark, results_sink):
    """§VI-E: Q8 under TD3 requires the most consulting round-trips
    (all tables except nation/region on different DBMSes)."""

    def run():
        td3 = systems_for("TD3")
        q8 = td3.xdb.submit(query("Q8"))
        q3 = td3.xdb.submit(query("Q3"))
        return q8.consultations, q3.consultations

    q8_consults, q3_consults = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert q8_consults > q3_consults
    results_sink(
        "fig15_consultations",
        "Consultation round-trips (TD3): "
        f"Q8={q8_consults}, Q3={q3_consults}",
    )
