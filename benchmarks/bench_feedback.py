"""Cardinality-feedback benchmark — the Q-Error loop on TPC-H.

Seeds the global catalog with adversarially skewed statistics (every
large table claims to hold one row — the classic stale-ANALYZE
pathology), runs Q3/Q8/Q9 cold, then re-runs them against the warmed
:class:`~repro.feedback.store.FeedbackStore`: the harvested actuals
re-steer the Selinger join-order DP and the Rule-4 placement costing,
so the second execution picks a different join order / placement and
moves less data.

Standalone (like ``bench_drift.py``) so CI can gate on it cheaply::

    python benchmarks/bench_feedback.py           # default config
    python benchmarks/bench_feedback.py --check   # regression gate

Writes ``benchmarks/results/BENCH_feedback.json`` with per-query
cold/warm execution seconds, transfer bytes, plan signatures, and
Q-Error medians; ``--check`` exits non-zero unless at least two of the
three queries change their plan *and* improve simulated runtime or
transfer volume by >= 1.3x, the aggregate median Q-Error drops after
one feedback round, and every warmed result stays byte-identical to
its cold run.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.scenarios import (  # noqa: E402
    build_tpch_deployment,
    distribution,
)
from repro.core.client import XDB  # noqa: E402
from repro.feedback.report import median_q_error  # noqa: E402
from repro.feedback.store import FeedbackStore  # noqa: E402
from repro.workloads.tpch import query  # noqa: E402

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_feedback.json"
)

#: the scalability-experiment queries (Fig. 12) — join-order sensitive
WORKLOAD = ("Q3", "Q8", "Q9")
#: the stale-ANALYZE pathology: every large table claims one row
SKEWED_ROW_COUNTS = {
    "lineitem": 1,
    "orders": 1,
    "partsupp": 1,
    "part": 1,
    "supplier": 1,
}
#: a warmed run must beat its cold run by this factor (exec or bytes)
IMPROVEMENT_FLOOR = 1.3
#: ... on at least this many of the three queries, with a new plan
IMPROVED_QUERIES_FLOOR = 2


def plan_signature(report) -> str:
    """The delegation plan's shape, stripped of movement statistics
    (attributed row counts vary with execution, the shape must not)."""
    return re.sub(r"\s*\[\d+ rows\]", "", report.plan.describe())


def canonical_rows(rows):
    return sorted(repr(tuple(row)) for row in rows)


def run_loop(td: str, scale_factor: float) -> dict:
    deployment, _ = build_tpch_deployment(td, scale_factor)
    store = FeedbackStore()
    xdb = XDB(deployment, feedback=store)
    xdb.warm_metadata()
    placement = distribution(td)
    for table, row_count in SKEWED_ROW_COUNTS.items():
        xdb.catalog.override_stats(placement[table], table, row_count)

    queries = {}
    cold_observations = []
    warm_observations = []
    for name in WORKLOAD:
        cold = xdb.submit(query(name))
        warm = xdb.submit(query(name))
        cold_observations.extend(cold.feedback)
        warm_observations.extend(warm.feedback)
        exec_ratio = cold.execution_seconds / max(
            warm.execution_seconds, 1e-9
        )
        transfer_ratio = cold.transfers.total_megabytes / max(
            warm.transfers.total_megabytes, 1e-9
        )
        queries[name] = {
            "cold_exec_seconds": cold.execution_seconds,
            "warm_exec_seconds": warm.execution_seconds,
            "cold_transfer_mb": cold.transfers.total_megabytes,
            "warm_transfer_mb": warm.transfers.total_megabytes,
            "exec_speedup": exec_ratio,
            "transfer_reduction": transfer_ratio,
            "plan_changed": (
                plan_signature(cold) != plan_signature(warm)
            ),
            "cold_plan": plan_signature(cold),
            "warm_plan": plan_signature(warm),
            "cold_median_q_error": median_q_error(cold.feedback),
            "warm_median_q_error": median_q_error(warm.feedback),
            "rows": len(cold.result.rows),
            "result_parity": (
                canonical_rows(cold.result.rows)
                == canonical_rows(warm.result.rows)
            ),
        }

    improved = [
        name
        for name, entry in queries.items()
        if entry["plan_changed"]
        and max(entry["exec_speedup"], entry["transfer_reduction"])
        >= IMPROVEMENT_FLOOR
    ]
    return {
        "queries": queries,
        "improved_queries": sorted(improved),
        "learned_entries": len(store),
        "median_q_error_cold": median_q_error(cold_observations),
        "median_q_error_warm": median_q_error(warm_observations),
    }


def check(report: dict) -> list:
    """The regression gate; returns a list of violation strings."""
    run = report["run"]
    problems = []
    for name, entry in run["queries"].items():
        if not entry["result_parity"]:
            problems.append(
                f"{name}: warmed rows differ from the cold run"
            )
    if len(run["improved_queries"]) < IMPROVED_QUERIES_FLOOR:
        problems.append(
            f"only {run['improved_queries']} changed plan and improved "
            f">= {IMPROVEMENT_FLOOR}x (need {IMPROVED_QUERIES_FLOOR} "
            f"of {list(run['queries'])})"
        )
    if not run["median_q_error_warm"] < run["median_q_error_cold"]:
        problems.append(
            f"median Q-Error did not drop after one feedback round "
            f"({run['median_q_error_cold']:.2f} -> "
            f"{run['median_q_error_warm']:.2f})"
        )
    if run["learned_entries"] == 0:
        problems.append("the feedback store learned nothing")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--td", default="TD1",
                        help="TPC-H table distribution (default TD1)")
    parser.add_argument("--scale-factor", type=float, default=0.002,
                        help="TPC-H scale factor (default 0.002)")
    parser.add_argument("--out", type=pathlib.Path, default=RESULTS_PATH,
                        help=f"output JSON path (default {RESULTS_PATH})")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on gate violations")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "cardinality-feedback",
        "python": platform.python_version(),
        "config": {
            "td": args.td,
            "scale_factor": args.scale_factor,
            "workload": list(WORKLOAD),
            "skewed_row_counts": dict(SKEWED_ROW_COUNTS),
            "improvement_floor": IMPROVEMENT_FLOOR,
        },
        "run": run_loop(args.td, args.scale_factor),
    }

    args.out.parent.mkdir(exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    run = report["run"]
    for name, entry in run["queries"].items():
        print(
            f"{name}: exec {entry['cold_exec_seconds']:.3f}s -> "
            f"{entry['warm_exec_seconds']:.3f}s "
            f"(x{entry['exec_speedup']:.2f}), transfer "
            f"{entry['cold_transfer_mb']:.3f}MB -> "
            f"{entry['warm_transfer_mb']:.3f}MB "
            f"(x{entry['transfer_reduction']:.2f}), "
            f"plan_changed={entry['plan_changed']}, "
            f"q-error {entry['cold_median_q_error']:.1f} -> "
            f"{entry['warm_median_q_error']:.1f}"
        )
    print(
        f"improved: {run['improved_queries']}; median q-error "
        f"{run['median_q_error_cold']:.2f} -> "
        f"{run['median_q_error_warm']:.2f}; "
        f"{run['learned_entries']} learned entries"
    )
    if args.check:
        problems = check(report)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
