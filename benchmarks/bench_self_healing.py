"""Self-healing benchmark: availability under a mid-workload outage.

Runs the paper's TPC-H queries on TD1 across the grid {no replicas,
replicated} × {no outage, mid-workload outage of db2}.  With
``customer`` and ``orders`` replicated onto db3, the client's plan
repair re-routes every affected query onto the surviving holder: the
replicated column must report full availability with answers identical
to the fault-free run, while the un-replicated column shows what the
outage costs without self-healing.  The table reports availability
(queries answered / total), answer fidelity, how many queries healed
through the repair loop, and the mean repair latency.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.bench.scenarios import build_tpch_deployment
from repro.core.client import XDB
from repro.errors import ReproError
from repro.faults import EngineOutage, FaultInjector, FaultPolicy
from repro.health import BreakerConfig
from repro.workloads.tpch import QUERIES, query

SCALE_FACTOR = 0.001
VICTIM = "db2"
REPLICA_TARGET = "db3"
REPLICATED_TABLES = ("customer", "orders")


def build(replicated: bool):
    deployment, _ = build_tpch_deployment("TD1", SCALE_FACTOR)
    if replicated:
        for table in REPLICATED_TABLES:
            deployment.replicate_table(table, REPLICA_TARGET)
    # The outage is permanent: an effectively infinite cool-down keeps
    # the breaker from re-probing the dead engine mid-benchmark.
    deployment.configure_health(BreakerConfig(cooldown_seconds=1e9))
    return deployment


def strike_point(replicated: bool, names):
    """Fault-free truth plus the guarded-call index at which killing
    the victim hits the first exec-phase statement of the first query
    that places work on it (a genuine mid-workload strike)."""
    deployment = build(replicated)
    xdb = XDB(deployment)
    xdb.warm_metadata()
    counting = FaultInjector(FaultPolicy()).install(deployment)
    truth = {}
    strike = None
    try:
        for name in names:
            before = counting.calls_by_db.get(VICTIM, 0)
            report = xdb.submit(query(name))
            truth[name] = report.result.sorted_rows()
            ddl = sum(
                1 for db, _ in report.deployed.ddl_log if db == VICTIM
            )
            execs = ddl + (
                1 if report.plan.root.annotation == VICTIM else 0
            )
            after = counting.calls_by_db.get(VICTIM, 0)
            if strike is None and execs:
                # The window is ann + execs + cleanup drops (one per
                # DDL); the strike lands right after the ann calls.
                strike = before + (after - before) - execs - ddl
    finally:
        counting.uninstall()
    assert strike is not None, f"no query places work on {VICTIM!r}"
    return strike, truth


def run_grid():
    names = sorted(QUERIES)
    rows = []
    for replicated in (False, True):
        strike, truth = strike_point(replicated, names)
        for outage in (False, True):
            deployment = build(replicated)
            xdb = XDB(deployment)
            xdb.warm_metadata()
            injector = None
            if outage:
                injector = FaultInjector(
                    FaultPolicy(
                        outages=(
                            EngineOutage(db=VICTIM, after_calls=strike),
                        )
                    )
                ).install(deployment)
            answered = identical = repaired = 0
            repair_seconds = []
            try:
                for name in names:
                    try:
                        report = xdb.submit(query(name))
                    except ReproError:
                        continue
                    answered += 1
                    if report.result.sorted_rows() == truth[name]:
                        identical += 1
                    recovery = report.recovery
                    if recovery is not None and recovery.repaired:
                        repaired += 1
                        repair_seconds.append(recovery.repair_seconds)
            finally:
                if injector is not None:
                    injector.uninstall()
            rows.append(
                {
                    "replicas": (
                        ",".join(REPLICATED_TABLES) + "→" + REPLICA_TARGET
                        if replicated
                        else "none"
                    ),
                    "outage": f"{VICTIM} down" if outage else "none",
                    "answered": answered,
                    "identical": identical,
                    "repaired": repaired,
                    "mean_repair_s": (
                        sum(repair_seconds) / len(repair_seconds)
                        if repair_seconds
                        else 0.0
                    ),
                    "fastfails": sum(
                        c.breaker_fastfails
                        for c in deployment.connectors.values()
                    ),
                }
            )
    return rows, len(names)


def test_self_healing_grid(benchmark, results_sink):
    rows, total = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    table = format_table(
        [
            "replicas",
            "outage",
            "availability",
            "identical",
            "repaired",
            "mean_repair_s",
            "breaker_fastfails",
        ],
        [
            [
                r["replicas"],
                r["outage"],
                f"{r['answered']}/{total}",
                f"{r['identical']}/{total}",
                r["repaired"],
                f"{r['mean_repair_s']:.4f}",
                r["fastfails"],
            ]
            for r in rows
        ],
    )
    results_sink(
        "self_healing",
        "Self-healing — TPC-H on TD1, mid-workload outage of db2\n"
        + table,
    )

    none_ok, none_down, repl_ok, repl_down = rows
    # Fault-free rows: full availability, nothing to repair.
    for r in (none_ok, repl_ok):
        assert r["answered"] == r["identical"] == total
        assert r["repaired"] == 0
    # Without replicas the outage costs answers.
    assert none_down["answered"] < total
    # With replicas the plan-repair loop preserves full availability
    # and exact answers; at least one query healed mid-flight and paid
    # a measurable repair latency.
    assert repl_down["answered"] == repl_down["identical"] == total
    assert repl_down["repaired"] >= 1
    assert repl_down["mean_repair_s"] > 0.0
